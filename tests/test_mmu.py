"""Tests for the MMU front-ends: baseline, hybrid, ideal.

The central correctness property is cross-architecture agreement: every
MMU must resolve the same (asid, va) to the same physical address, since
they differ only in *where* translation happens.
"""

import dataclasses

import pytest

from repro.common.address import PAGE_SIZE, virtual_block_key
from repro.common.params import SystemConfig
from repro.common.rng import make_rng
from repro.core import ConventionalMmu, HybridMmu, IdealMmu
from repro.osmodel import Kernel

MB = 1024 * 1024


def build(mmu_cls, sharing=False, **mmu_kwargs):
    config = dataclasses.replace(SystemConfig(), cores=2)
    kernel = Kernel(config)
    a = kernel.create_process("a")
    vma = kernel.mmap(a, 8 * MB, policy="eager")
    shared_vma = None
    if sharing:
        b = kernel.create_process("b")
        shared_vma = kernel.mmap_shared([a, b], 1 * MB)[a.asid]
    mmu = mmu_cls(kernel, config, **mmu_kwargs)
    return kernel, a, vma, shared_vma, mmu


class TestConventionalMmu:
    def test_translation_correct(self):
        kernel, p, vma, _s, mmu = build(ConventionalMmu)
        out = mmu.access(0, p.asid, vma.vbase + 0x1234, False)
        assert out.translated_pa == kernel.translate(p.asid,
                                                     vma.vbase + 0x1234).pa

    def test_tlb_miss_blocks_front(self):
        _k, p, vma, _s, mmu = build(ConventionalMmu)
        cold = mmu.access(0, p.asid, vma.vbase, False)
        warm = mmu.access(0, p.asid, vma.vbase, False)
        assert cold.front_cycles > 0      # walk blocked the access
        assert warm.front_cycles == 0     # L1 TLB hit overlaps with L1

    def test_l2_tlb_hit_exposes_latency(self):
        config = SystemConfig()
        _k, p, vma, _s, mmu = build(ConventionalMmu)
        # Touch 100 pages to push the first out of the 64-entry L1 TLB.
        for i in range(100):
            mmu.access(0, p.asid, vma.vbase + i * PAGE_SIZE, False)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles == config.l2_tlb.latency

    def test_shootdown_invalidates(self):
        kernel, p, vma, _s, mmu = build(ConventionalMmu)
        mmu.access(0, p.asid, vma.vbase, False)
        kernel.shootdown_page(p.asid, vma.vbase)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles > 0  # walked again

    def test_cache_hit_after_fill(self):
        _k, p, vma, _s, mmu = build(ConventionalMmu)
        mmu.access(0, p.asid, vma.vbase, False)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.hit_level == "l1"
        assert out.dram_cycles == 0


class TestIdealMmu:
    def test_no_translation_cost_ever(self):
        _k, p, vma, _s, mmu = build(IdealMmu)
        for i in range(50):
            out = mmu.access(0, p.asid, vma.vbase + i * PAGE_SIZE, False)
            assert out.front_cycles == 0
            assert out.delayed_cycles == 0

    def test_translation_correct(self):
        kernel, p, vma, _s, mmu = build(IdealMmu)
        va = vma.vbase + 0x4321
        out = mmu.access(0, p.asid, va, True)
        assert out.translated_pa == kernel.translate(p.asid, va).pa


class TestHybridMmuNonSynonym:
    def test_bypass_has_zero_front_cost(self):
        _k, p, vma, _s, mmu = build(HybridMmu, delayed="tlb")
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.front_cycles == 0       # no TLB before the caches
        assert out.delayed_cycles > 0      # translation after LLC miss

    def test_cached_data_needs_no_translation(self):
        _k, p, vma, _s, mmu = build(HybridMmu, delayed="tlb")
        mmu.access(0, p.asid, vma.vbase, False)
        out = mmu.access(0, p.asid, vma.vbase, False)
        assert out.delayed_cycles == 0
        assert out.hit_level == "l1"

    def test_blocks_cached_virtually(self):
        _k, p, vma, _s, mmu = build(HybridMmu)
        mmu.access(0, p.asid, vma.vbase, False)
        key = virtual_block_key(p.asid, vma.vbase)
        line = mmu.caches.probe_line(0, key)
        assert line is not None
        assert not line.is_synonym

    def test_translation_correct_both_engines(self):
        for engine in ("tlb", "segments"):
            kernel, p, vma, _s, mmu = build(HybridMmu, delayed=engine)
            va = vma.vbase + 3 * MB + 77
            out = mmu.access(0, p.asid, va, False)
            assert out.translated_pa == kernel.translate(p.asid, va).pa

    def test_homonyms_do_not_collide(self):
        """Two processes using the same VA must get separate lines."""
        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        # Pin both heaps to one base (overriding ASLR staggering) so the
        # two processes genuinely use the same virtual addresses.
        a = kernel.create_process("a", va_base=0x1000_0000)
        b = kernel.create_process("b", va_base=0x1000_0000)
        vma_a = kernel.mmap(a, MB, policy="eager")
        vma_b = kernel.mmap(b, MB, policy="eager")
        assert vma_a.vbase == vma_b.vbase  # same VA, different ASID
        mmu = HybridMmu(kernel, config)
        out_a = mmu.access(0, a.asid, vma_a.vbase, False)
        out_b = mmu.access(1, b.asid, vma_b.vbase, False)
        assert out_a.translated_pa != out_b.translated_pa

    def test_bypass_counting(self):
        _k, p, vma, _s, mmu = build(HybridMmu)
        for i in range(10):
            mmu.access(0, p.asid, vma.vbase + i * 64, False)
        assert mmu.hybrid_stats["tlb_bypasses"] == 10
        assert mmu.tlb_access_reduction() == 1.0


class TestHybridMmuSynonyms:
    def test_synonym_cached_physically(self):
        kernel, a, _vma, shared, mmu = build(HybridMmu, sharing=True)
        out = mmu.access(0, a.asid, shared.vbase, False)
        assert out.translated_pa is not None
        from repro.common.address import physical_block_key
        line = mmu.caches.probe_line(0, physical_block_key(out.translated_pa))
        assert line is not None and line.is_synonym

    def test_synonyms_share_one_cache_line(self):
        """The coherence guarantee: both names resolve to one block."""
        config = dataclasses.replace(SystemConfig(), cores=2)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 64 * PAGE_SIZE)
        mmu = HybridMmu(kernel, config)
        out_a = mmu.access(0, a.asid, vmas[a.asid].vbase + 0x100, True)
        out_b = mmu.access(1, b.asid, vmas[b.asid].vbase + 0x100, False)
        assert out_a.translated_pa == out_b.translated_pa
        # The second access hit in the shared LLC (one physical name).
        assert out_b.hit_level in ("llc", "l1", "l2")

    def test_synonym_pays_front_translation(self):
        _k, a, _vma, shared, mmu = build(HybridMmu, sharing=True)
        out = mmu.access(0, a.asid, shared.vbase, False)
        assert out.front_cycles >= mmu.synonym_tlb.latency

    def test_candidate_accounting(self):
        _k, a, _vma, shared, mmu = build(HybridMmu, sharing=True)
        mmu.access(0, a.asid, shared.vbase, False)
        assert mmu.hybrid_stats["synonym_candidates"] == 1
        assert mmu.hybrid_stats["true_synonym_accesses"] == 1

    def test_write_to_readonly_synonym_faults_before_cache(self):
        """Section III-A: the synonym TLB checks permissions up front."""
        from repro.osmodel.pagetable import PERM_READ
        config = dataclasses.replace(SystemConfig(), cores=1)
        kernel = Kernel(config)
        a = kernel.create_process("a")
        b = kernel.create_process("b")
        kernel.mmap(a, MB, policy="eager")
        kernel.mmap(b, MB, policy="eager")
        vmas = kernel.mmap_shared([a, b], 4 * PAGE_SIZE,
                                  permissions=PERM_READ)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        va = vmas[a.asid].vbase
        read = mmu.access(0, a.asid, va, is_write=False)  # fine
        shared_pa = read.translated_pa
        write = mmu.access(0, a.asid, va, is_write=True)
        assert mmu.hybrid_stats["permission_faults"] == 1
        assert write.translated_pa != shared_pa  # CoW: private page
        # Process b still reads the original shared page.
        again = mmu.access(0, b.asid, vmas[b.asid].vbase, is_write=False)
        assert again.translated_pa == shared_pa

    def test_share_transition_flushes_virtual_lines(self):
        kernel, a, vma, _s, mmu = build(HybridMmu, sharing=True)
        va = vma.vbase
        mmu.access(0, a.asid, va, False)
        key = virtual_block_key(a.asid, va)
        assert mmu.caches.probe_line(0, key) is not None
        kernel.share_existing_pages(a, va, PAGE_SIZE)
        # Stale ASID+VA line must be gone...
        assert mmu.caches.probe_line(0, key) is None
        # ...and the next access goes through the synonym (PA) path.
        out = mmu.access(0, a.asid, va, False)
        assert mmu.hybrid_stats["true_synonym_accesses"] >= 1
        assert out.translated_pa == kernel.translate(a.asid, va).pa


class TestCrossMmuAgreement:
    def test_all_mmus_agree_on_translation(self):
        config = dataclasses.replace(SystemConfig(), cores=1)
        rng = make_rng(5)
        offsets = [rng.randrange(0, 8 * MB) & ~7 for _ in range(300)]
        pas = {}
        for name, cls, kw in (
            ("baseline", ConventionalMmu, {}),
            ("ideal", IdealMmu, {}),
            ("hybrid_tlb", HybridMmu, {"delayed": "tlb"}),
            ("hybrid_seg", HybridMmu, {"delayed": "segments"}),
        ):
            kernel = Kernel(config)
            p = kernel.create_process("p")
            vma = kernel.mmap(p, 8 * MB, policy="eager")
            mmu = cls(kernel, config, **kw)
            pas[name] = [
                mmu.access(0, p.asid, vma.vbase + off, False).translated_pa
                - vma.segments[0].pbase
                for off in offsets
            ]
        assert pas["baseline"] == pas["ideal"]
        assert pas["baseline"] == pas["hybrid_tlb"]
        assert pas["baseline"] == pas["hybrid_seg"]
