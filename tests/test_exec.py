"""Tests for the job-based execution engine (``repro.exec``).

Covers the frozen Job/fingerprint model, plan-level deduplication,
serial/parallel executor equivalence (bit-identical results), per-job
error capture, the fingerprint-keyed on-disk result cache (including a
warm rerun performing zero new simulations), and schema stability of
the ``repro.result/v1`` / ``repro.compare/v1`` / ``repro.sweep/v1``
JSON documents the cache and the CLI rely on.
"""

import json

import pytest

from repro.cli import main
from repro.common.params import SystemConfig
from repro.exec import (
    ExperimentPlan,
    Job,
    JobError,
    JobFailedError,
    ParallelExecutor,
    ResultCache,
    SerialExecutor,
)
from repro.obs.tracer import Tracer
from repro.sim import run_workload, sweep_grid
from repro.sim.results import RESULT_SCHEMA, SimulationResult

FAST = dict(accesses=800, warmup=200)

GRID_8 = {
    "delayed_tlb.entries": [512, 1024],
    "llc.size_bytes": [1 << 20, 2 << 20],
    "cores": [1, 2],
}


def identity_view(result: SimulationResult) -> dict:
    """``to_json_dict`` with the manifest's environment fields stripped
    (host, wall-clock, duration) — the deterministic subset."""
    doc = result.to_json_dict()
    doc["manifest"] = result.manifest.identity() if result.manifest else None
    return doc


# --------------------------------------------------------------------- #
# Job: fingerprints
# --------------------------------------------------------------------- #

class TestJobFingerprint:
    def test_equal_inputs_equal_fingerprints(self):
        a = Job("stream", "baseline", **FAST)
        b = Job("stream", "baseline", **FAST)
        assert a.fingerprint() == b.fingerprint()

    def test_tags_do_not_change_the_fingerprint(self):
        a = Job("stream", "baseline", tags=(("column", "x"),), **FAST)
        b = Job("stream", "baseline", **FAST)
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("override", [
        dict(workload="gups"),
        dict(mmu="hybrid_tlb"),
        dict(config=SystemConfig().with_delayed_tlb_entries(512)),
        dict(accesses=801),
        dict(warmup=201),
        dict(seed=7),
        dict(interval=100),
        dict(reset_stats_after_warmup=True),
    ])
    def test_every_deterministic_input_is_keyed(self, override):
        base = Job("stream", "baseline", **FAST)
        params = dict(workload="stream", mmu="baseline", **FAST)
        params.update(override)
        assert Job(**params).fingerprint() != base.fingerprint()

    def test_identity_matches_manifest_identity(self):
        """The job's fingerprint inputs agree with the manifest the run
        actually produces (same workload/mmu/config-hash/counts)."""
        job = Job("stream", "baseline", **FAST)
        result = job.run()
        manifest_identity = result.manifest.identity()
        job_identity = job.identity()
        for key in manifest_identity:
            assert job_identity[key] == manifest_identity[key], key


# --------------------------------------------------------------------- #
# Plans: dedup + error capture
# --------------------------------------------------------------------- #

class TestExperimentPlan:
    def test_duplicate_fingerprints_collapse(self):
        plan = ExperimentPlan()
        fp1 = plan.add(Job("stream", "baseline", **FAST))
        fp2 = plan.add(Job("stream", "baseline", **FAST))
        assert fp1 == fp2
        assert len(plan) == 1
        assert plan.duplicates == 1

    def test_dedup_executes_once_and_serves_both_lookups(self):
        executor = SerialExecutor()
        a = Job("stream", "baseline", **FAST)
        b = Job("stream", "baseline", **FAST)
        plan = ExperimentPlan([a, b])
        results = plan.run(executor=executor)
        assert executor.submitted == 1
        assert results.result(a) is results.result(b)

    def test_failed_job_does_not_kill_the_plan(self):
        plan = ExperimentPlan([
            Job("stream", "baseline", **FAST),
            Job("stream", "no_such_mmu", **FAST),
        ])
        results = plan.run()
        assert len(results.results()) == 1
        (error,) = results.errors()
        assert isinstance(error, JobError)
        assert error.error_type == "ValueError"
        assert "no_such_mmu" in error.message
        assert "Traceback" in error.traceback

    def test_result_raises_for_failed_job(self):
        bad = Job("stream", "no_such_mmu", **FAST)
        results = ExperimentPlan([bad]).run()
        with pytest.raises(JobFailedError, match="no_such_mmu"):
            results.result(bad)

    def test_progress_callback_sees_every_job(self):
        seen = []
        plan = ExperimentPlan([
            Job("stream", "baseline", **FAST),
            Job("stream", "no_such_mmu", **FAST),
        ])
        plan.run(progress=lambda done, total, job, status:
                 seen.append((done, total, status)))
        assert seen == [(1, 2, "ok"), (2, 2, "error")]

    def test_single_submission_path_emits_run_start_marks(self):
        tracer = Tracer()
        plan = ExperimentPlan([
            Job("stream", "baseline",
                tags=(("delayed_tlb_entries", 512),), **FAST)])
        plan.run(tracer=tracer)
        marks = [e for e in tracer.events if e.stage == "mark"]
        assert marks and marks[0].detail["label"] == "run_start"
        assert marks[0].detail["workload"] == "stream"
        assert marks[0].detail["delayed_tlb_entries"] == 512


# --------------------------------------------------------------------- #
# Executors: parallel == serial
# --------------------------------------------------------------------- #

class TestParallelDeterminism:
    def test_parallel_matches_serial_on_8_point_grid(self):
        serial = sweep_grid("stream", "hybrid_tlb", GRID_8,
                            executor=SerialExecutor(), **FAST)
        parallel = sweep_grid("stream", "hybrid_tlb", GRID_8,
                              executor=ParallelExecutor(workers=4), **FAST)
        assert len(serial) == len(parallel) == 8
        for s, p in zip(serial, parallel):
            assert s["params"] == p["params"]
            assert identity_view(s["result"]) == identity_view(p["result"])

    def test_parallel_captures_errors_in_order(self):
        jobs = [Job("stream", "baseline", **FAST),
                Job("stream", "no_such_mmu", **FAST),
                Job("stream", "ideal", **FAST)]
        outcomes = ParallelExecutor(workers=2).run(jobs)
        assert isinstance(outcomes[0], SimulationResult)
        assert isinstance(outcomes[1], JobError)
        assert isinstance(outcomes[2], SimulationResult)
        assert outcomes[0].mmu == "baseline"
        assert outcomes[2].mmu == "ideal"

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


# --------------------------------------------------------------------- #
# Result cache
# --------------------------------------------------------------------- #

class TestResultCache:
    def test_warm_rerun_performs_zero_new_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        grid = {"delayed_tlb.entries": [512, 1024]}
        cold = SerialExecutor()
        first = sweep_grid("stream", "hybrid_tlb", grid,
                           executor=cold, cache=cache, **FAST)
        assert cold.submitted == 2

        warm = SerialExecutor()
        second = sweep_grid("stream", "hybrid_tlb", grid,
                            executor=warm, cache=cache, **FAST)
        assert warm.submitted == 0          # every point served from disk
        assert cache.hits == 2
        for a, b in zip(first, second):
            assert a["result"].to_json_dict() == b["result"].to_json_dict()

    def test_changed_point_is_the_only_resimulation(self, tmp_path):
        cache = ResultCache(tmp_path)
        sweep_grid("stream", "hybrid_tlb",
                   {"delayed_tlb.entries": [512, 1024]},
                   executor=SerialExecutor(), cache=cache, **FAST)
        grown = SerialExecutor()
        results = ExperimentPlan([
            Job("stream", "hybrid_tlb",
                config=SystemConfig().with_delayed_tlb_entries(entries),
                **FAST)
            for entries in (512, 1024, 2048)]).run(executor=grown,
                                                   cache=cache)
        assert grown.submitted == 1         # only the new 2048 point
        assert len(results.results()) == 3

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job("stream", "baseline", **FAST)
        cache.store(job, job.run())
        cache.path(job).write_text("{ not json")
        assert cache.load(job) is None

    def test_wrong_schema_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job("stream", "baseline", **FAST)
        cache.path(job).write_text(json.dumps({"schema": "bogus/v9"}))
        assert cache.load(job) is None

    def test_entry_is_a_result_v1_document_with_identity(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job("stream", "baseline", **FAST)
        cache.store(job, job.run())
        doc = json.loads(cache.path(job).read_text())
        assert doc["schema"] == RESULT_SCHEMA
        assert doc["fingerprint"] == job.fingerprint()
        assert doc["identity"] == json.loads(
            json.dumps(job.identity()))     # JSON-clean
        assert cache.load(job) is not None

    def test_errors_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        bad = Job("stream", "no_such_mmu", **FAST)
        ExperimentPlan([bad]).run(cache=cache)
        assert not cache.path(bad).exists()


# --------------------------------------------------------------------- #
# SimulationResult JSON round trip
# --------------------------------------------------------------------- #

class TestResultRoundTrip:
    def test_from_json_dict_inverts_to_json_dict(self):
        result = run_workload("stream", "hybrid_tlb", seed=42, interval=200,
                              **FAST)
        rebuilt = SimulationResult.from_json_dict(result.to_json_dict())
        assert rebuilt.cycles == result.cycles
        assert rebuilt.ipc == result.ipc
        assert rebuilt.stats == result.stats
        assert rebuilt.to_json_dict() == result.to_json_dict()

    def test_round_trip_through_json_text(self):
        result = run_workload("stream", "baseline", seed=42, **FAST)
        text = json.dumps(result.to_json_dict())
        rebuilt = SimulationResult.from_json_dict(json.loads(text))
        assert rebuilt.to_json_dict() == result.to_json_dict()
        assert rebuilt.manifest.identity() == result.manifest.identity()

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="repro.result/v1"):
            SimulationResult.from_json_dict({"schema": "nope"})


# --------------------------------------------------------------------- #
# Schema stability goldens
# --------------------------------------------------------------------- #

RESULT_V1_FIELDS = {
    "schema": str, "workload": str, "mmu": str, "instructions": int,
    "accesses": int, "cycles": float, "ipc": float, "llc_miss_rate": float,
    "cycle_breakdown": dict, "stats": dict, "histograms": dict,
    "manifest": dict, "interval": (int, type(None)), "intervals": list,
}

MANIFEST_V1_FIELDS = {
    "workload": str, "mmu": str, "config_hash": str, "seed": int,
    "accesses": int, "warmup": int, "package_version": str,
    "python_version": str, "host": str, "started_at": str,
    "duration_s": float, "schema": str,
}


def check_fields(doc, fields):
    assert set(doc) == set(fields), (
        f"schema drift: {set(doc) ^ set(fields)}")
    for key, types in fields.items():
        assert isinstance(doc[key], types), (key, type(doc[key]))


class TestSchemaStability:
    """Pin the persisted document layouts so the result cache and any
    external consumer can't be broken silently.  Adding a field requires
    updating these goldens (and is allowed under the same version);
    removing or retyping one means bumping the schema tag."""

    def test_result_v1_layout(self):
        doc = run_workload("stream", "baseline", seed=42, interval=200,
                           **FAST).to_json_dict()
        assert doc["schema"] == "repro.result/v1"
        check_fields(doc, RESULT_V1_FIELDS)
        check_fields(doc["manifest"], MANIFEST_V1_FIELDS)
        window = doc["intervals"][0]
        assert {"index", "accesses", "cycles", "instructions", "ipc",
                "counters"} <= set(window)

    def test_compare_v1_layout(self, capsys):
        main(["compare", "stream", "--accesses", "600", "--warmup", "200",
              "--configs", "baseline,hybrid_tlb", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"schema", "workload", "normalized_to",
                            "speedups", "results"}
        assert doc["schema"] == "repro.compare/v1"
        assert doc["normalized_to"] == "baseline"
        assert set(doc["speedups"]) == {"baseline", "hybrid_tlb"}
        assert all(isinstance(v, float) for v in doc["speedups"].values())
        for result_doc in doc["results"].values():
            check_fields(result_doc, RESULT_V1_FIELDS)

    def test_sweep_v1_layout(self, capsys):
        main(["sweep", "stream", "--accesses", "600", "--warmup", "200",
              "--sizes", "512,1024", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"schema", "workload", "sizes",
                            "delayed_tlb_mpki", "results"}
        assert doc["schema"] == "repro.sweep/v1"
        assert doc["sizes"] == [512, 1024]
        assert len(doc["delayed_tlb_mpki"]) == 2
        assert all(isinstance(v, float) for v in doc["delayed_tlb_mpki"])
        for result_doc in doc["results"]:
            check_fields(result_doc, RESULT_V1_FIELDS)


# --------------------------------------------------------------------- #
# CLI engine flags
# --------------------------------------------------------------------- #

class TestCliEngineFlags:
    def test_cache_dir_reuses_results(self, tmp_path, capsys):
        argv = ["run", "stream", "baseline", "--accesses", "600",
                "--warmup", "200", "--json", "--cache-dir", str(tmp_path)]
        main(argv)
        first = json.loads(capsys.readouterr().out)
        assert len(list(tmp_path.glob("*.json"))) == 1
        main(argv)
        captured = capsys.readouterr()
        second = json.loads(captured.out)
        assert first == second
        assert "cached" in captured.err

    def test_workers_flag_parses_and_runs(self, capsys):
        main(["compare", "stream", "--accesses", "600", "--warmup", "200",
              "--configs", "baseline,ideal", "--workers", "2"])
        captured = capsys.readouterr()
        assert "normalized to baseline" in captured.out
        assert "[2/2]" in captured.err

    def test_workers_shard_trace_out(self, tmp_path, capsys):
        """--trace-out with --workers shards per job instead of rejecting."""
        base = tmp_path / "t.jsonl"
        assert main(["sweep", "stream", "--accesses", "600", "--warmup",
                     "200", "--sizes", "1024,4096", "--workers", "2",
                     "--trace-out", str(base)]) == 0
        captured = capsys.readouterr()
        assert "2 trace shard(s)" in captured.err
        shards = sorted(tmp_path.glob("t.jsonl.*.jsonl"))
        assert len(shards) == 2
        for shard in shards:
            first = json.loads(shard.read_text().splitlines()[0])
            assert first["stage"] == "mark"
            assert first["label"] == "run_start"


# --------------------------------------------------------------------- #
# Job wire format + cancellation (the serving layer's engine hooks)
# --------------------------------------------------------------------- #

class TestJobWireFormat:
    def test_round_trip_preserves_fingerprint(self):
        job = Job("stream", "hybrid_tlb",
                  config=SystemConfig().with_delayed_tlb_entries(512),
                  interval=250, tags=(("size", 4),), **FAST)
        doc = job.to_json_dict()
        assert doc["schema"] == "repro.job/v1"
        back = Job.from_json_dict(json.loads(json.dumps(doc)))
        assert back == job
        assert back.fingerprint() == job.fingerprint()

    def test_document_shape_is_stable(self):
        doc = Job("stream", "baseline", interval=100,
                  **FAST).to_json_dict()
        check_fields(doc, {
            "schema": str,
            "workload": str,
            "mmu": str,
            "config": (dict, type(None)),
            "accesses": int,
            "warmup": int,
            "seed": int,
            "interval": (int, type(None)),
            "reset_stats_after_warmup": bool,
            "tags": list,
        })

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="repro.job/v1"):
            Job.from_json_dict({"schema": "bogus/v9"})

    def test_non_string_workload_rejected(self):
        with pytest.raises(TypeError, match="catalog name"):
            Job.from_json_dict({"schema": "repro.job/v1",
                                "workload": 7, "mmu": "baseline"})

    def test_adhoc_spec_jobs_have_no_wire_form(self):
        import dataclasses

        from repro.workloads import spec as catalog_spec

        adhoc = dataclasses.replace(catalog_spec("stream"), name="adhoc")
        with pytest.raises(ValueError, match="WorkloadSpec"):
            Job(adhoc, "baseline", **FAST).to_json_dict()


class TestCancellation:
    def test_timeout_yields_cancelled_joberror(self):
        from repro.exec import run_job

        outcome = run_job(Job("stream", "baseline",
                              accesses=10_000_000, warmup=100),
                          timeout=0.05)
        assert isinstance(outcome, JobError)
        assert outcome.error_type == "JobCancelled"
        assert "deadline" in outcome.message

    def test_cancel_callable_aborts_serial_batch(self):
        from repro.exec import run_job

        outcome = run_job(Job("stream", "baseline",
                              accesses=10_000_000, warmup=100),
                          cancel=lambda: True)
        assert isinstance(outcome, JobError)
        assert outcome.error_type == "JobCancelled"

    def test_untimed_job_still_completes(self):
        from repro.exec import run_job

        outcome = run_job(Job("stream", "baseline", **FAST), timeout=60.0)
        assert isinstance(outcome, SimulationResult)

    def test_parallel_executor_applies_per_job_deadline(self):
        jobs = [Job("stream", "baseline", accesses=10_000_000,
                    warmup=100, seed=seed) for seed in (1, 2)]
        outcomes = {}
        ParallelExecutor(workers=2).run(
            jobs, on_done=lambda job, out:
            outcomes.__setitem__(job.fingerprint(), out), timeout=0.05)
        assert len(outcomes) == 2
        for outcome in outcomes.values():
            assert isinstance(outcome, JobError)
            assert outcome.error_type == "JobCancelled"


class TestCacheConcurrentWriters:
    def test_interleaved_writers_never_truncate_an_entry(self, tmp_path):
        """Same-fingerprint stores racing from several threads (exactly
        what coalescing-adjacent service workers do) must leave one
        complete JSON document and no temp droppings."""
        import threading

        cache = ResultCache(tmp_path)
        job = Job("stream", "baseline", **FAST)
        result = job.run()
        expected = json.loads(json.dumps(result.to_json_dict()))

        writers = 4
        rounds = 25
        barrier = threading.Barrier(writers + 1)
        errors = []

        def write() -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(rounds):
                    cache.store(job, result)
            except BaseException as exc:     # pragma: no cover
                errors.append(exc)

        def read() -> None:
            try:
                barrier.wait(timeout=30)
                for _ in range(rounds * 2):
                    loaded = cache.load(job)
                    if loaded is not None:   # never torn/partial
                        assert loaded.to_json_dict() == expected
            except BaseException as exc:     # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write) for _ in range(writers)]
        threads.append(threading.Thread(target=read))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[:3]
        final = cache.load(job)
        assert final is not None
        assert final.to_json_dict() == expected
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name != cache.path(job).name]
        assert leftovers == []               # no .tmp files left behind
