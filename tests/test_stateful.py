"""Stateful property testing of the kernel + hybrid MMU stack.

A hypothesis rule machine drives random OS activity (mmap of both
policies, sharing, mprotect, DMA registration, fork, munmap) interleaved
with memory accesses through the hybrid MMU, and checks the system-wide
invariants after every step:

* every access resolves to the kernel's functional translation;
* true synonym pages are always filter candidates (no false negatives,
  whatever the OS did before);
* shared pages never linger in the caches under ASID+VA names;
* frame accounting never leaks into inconsistency.
"""

import dataclasses

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.common.address import PAGE_SIZE, page_base, virtual_block_key
from repro.common.params import CacheConfig, SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel
from repro.osmodel.pagetable import PERM_READ

MB = 1024 * 1024


def small_system():
    return dataclasses.replace(
        SystemConfig(),
        cores=2,
        l1=CacheConfig(1024, 2, 2),
        l2=CacheConfig(4096, 4, 6),
        llc=CacheConfig(16384, 8, 27),
        physical_memory_bytes=512 * MB,
    )


class HybridSystemMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.config = small_system()
        self.kernel = Kernel(self.config)
        self.a = self.kernel.create_process("a")
        self.b = self.kernel.create_process("b")
        self.mmu = HybridMmu(self.kernel, self.config, delayed="tlb")
        self.vmas = {self.a.asid: [], self.b.asid: []}
        self.shared = []  # (asid, vma) pairs for live shared mappings
        # Seed each process with one mapping so accesses always have a
        # target.
        for p in (self.a, self.b):
            self.vmas[p.asid].append(
                self.kernel.mmap(p, 8 * PAGE_SIZE, policy="eager"))

    def _process(self, which):
        return self.a if which == 0 else self.b

    # ------------------------------------------------------------------ #
    # OS activity
    # ------------------------------------------------------------------ #

    @rule(which=st.integers(0, 1), pages=st.integers(1, 8),
          eager=st.booleans())
    def do_mmap(self, which, pages, eager):
        p = self._process(which)
        if len(self.vmas[p.asid]) >= 12:
            return
        vma = self.kernel.mmap(p, pages * PAGE_SIZE,
                               policy="eager" if eager else "demand")
        self.vmas[p.asid].append(vma)

    @rule(pages=st.integers(1, 4))
    def do_share(self, pages):
        if len(self.shared) >= 6:
            return
        vmas = self.kernel.mmap_shared([self.a, self.b], pages * PAGE_SIZE)
        for asid, vma in vmas.items():
            self.shared.append((asid, vma))

    @rule(which=st.integers(0, 1), index=st.integers(0, 11))
    def do_munmap(self, which, index):
        p = self._process(which)
        private = self.vmas[p.asid]
        if len(private) <= 1 or index >= len(private):
            return
        vma = private.pop(index)
        self.kernel.munmap(p, vma)

    @rule(which=st.integers(0, 1), index=st.integers(0, 11))
    def do_mprotect_readonly(self, which, index):
        p = self._process(which)
        private = self.vmas[p.asid]
        if index >= len(private):
            return
        vma = private[index]
        self.kernel.change_permissions(p, vma.vbase, PAGE_SIZE, PERM_READ)

    @rule(which=st.integers(0, 1), index=st.integers(0, 11))
    def do_dma_register(self, which, index):
        p = self._process(which)
        private = self.vmas[p.asid]
        if index >= len(private):
            return
        self.kernel.register_dma_region(p, private[index].vbase, PAGE_SIZE)

    @rule(which=st.integers(0, 1), index=st.integers(0, 11),
          frac=st.floats(0.0, 0.999))
    def do_share_existing(self, which, index, frac):
        p = self._process(which)
        private = self.vmas[p.asid]
        if index >= len(private):
            return
        vma = private[index]
        va = vma.vbase + int(frac * vma.length)
        self.kernel.translate(p.asid, va)  # ensure mapped
        self.kernel.share_existing_pages(p, page_base(va), PAGE_SIZE)

    # ------------------------------------------------------------------ #
    # Memory accesses
    # ------------------------------------------------------------------ #

    @rule(which=st.integers(0, 1), index=st.integers(0, 11),
          frac=st.floats(0.0, 0.999), write=st.booleans())
    def do_access_private(self, which, index, frac, write):
        p = self._process(which)
        private = self.vmas[p.asid]
        if index >= len(private):
            return
        vma = private[index]
        va = (vma.vbase + int(frac * vma.length)) & ~0x7
        out = self.mmu.access(which, p.asid, va, write)
        assert out.translated_pa == self.kernel.translate(p.asid, va).pa

    @precondition(lambda self: self.shared)
    @rule(pick=st.integers(0, 11), frac=st.floats(0.0, 0.999),
          write=st.booleans())
    def do_access_shared(self, pick, frac, write):
        asid, vma = self.shared[pick % len(self.shared)]
        core = 0 if asid == self.a.asid else 1
        va = (vma.vbase + int(frac * vma.length)) & ~0x7
        out = self.mmu.access(core, asid, va, write)
        assert out.translated_pa == self.kernel.translate(asid, va).pa

    # ------------------------------------------------------------------ #
    # Invariants
    # ------------------------------------------------------------------ #

    @invariant()
    def synonym_filter_never_misses_live_shared_pages(self):
        if not hasattr(self, "shared"):
            return
        for asid, vma in self.shared:
            process = self.kernel.process(asid)
            for offset in range(0, vma.length, PAGE_SIZE):
                assert process.synonym_filter.is_synonym_candidate(
                    vma.vbase + offset)

    @invariant()
    def no_virtual_copies_of_shared_blocks(self):
        if not hasattr(self, "shared"):
            return
        for asid, vma in self.shared:
            for offset in range(0, min(vma.length, 4 * PAGE_SIZE), 64):
                key = virtual_block_key(asid, vma.vbase + offset)
                assert self.mmu.caches.probe_line(0, key) is None
                assert self.mmu.caches.probe_line(1, key) is None

    @invariant()
    def frame_accounting_consistent(self):
        if not hasattr(self, "kernel"):
            return
        frames = self.kernel.frames
        assert (frames.free_frames() + frames.allocated_frames()
                == frames.total_frames)


HybridSystemMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None)

TestHybridSystemMachine = HybridSystemMachine.TestCase
