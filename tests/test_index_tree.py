"""Tests for the B-tree segment index."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.rng import make_rng
from repro.osmodel import FrameAllocator, IndexTree, OsSegmentTable
from repro.osmodel.index_tree import MAX_CHILDREN, MAX_KEYS, NODE_BYTES, pack_key

MB = 1024 * 1024
PAGE = 4096


def build_system(n_segments, asid=1, seg_bytes=64 * PAGE, gap=PAGE):
    frames = FrameAllocator(1024 * MB)
    table = OsSegmentTable(capacity=4096)
    va = 0x1000_0000
    pa = 0
    for _ in range(n_segments):
        table.insert(asid, va, seg_bytes, pa)
        va += seg_bytes + gap
        pa += seg_bytes + PAGE
    tree = IndexTree(frames)
    tree.build(table)
    return frames, table, tree


class TestBuild:
    def test_empty_tree(self):
        frames = FrameAllocator(16 * MB)
        table = OsSegmentTable()
        tree = IndexTree(frames)
        tree.build(table)
        assert tree.root is None
        result = tree.lookup(1, 0x1000)
        assert result.seg_id is None
        assert result.node_addresses == []

    def test_depth_bound_for_2048_segments(self):
        _f, _t, tree = build_system(2048)
        # The paper quotes depth 4 assuming near-full nodes; at the
        # realistic ~2/3 bulk-load fill we use, 2048 segments need one
        # more level.  The walker charges actual node reads either way.
        assert tree.depth <= 5

    def test_footprint_tracks_fill_factor(self):
        _f, _t, tree_small = build_system(1024)
        _f2, _t2, tree_big = build_system(2048)
        # The 1024-segment tree fits a 32 KB index cache; the
        # 2048-segment tree overflows it (Figure 7(b) behaviour).
        assert tree_small.footprint_bytes() < 32 * 1024
        assert tree_big.footprint_bytes() > 32 * 1024

    def test_nodes_are_64b_aligned_and_distinct(self):
        _f, _t, tree = build_system(100)
        addresses = []

        def collect(node):
            addresses.append(node.pa)
            if node.children:
                for child in node.children:
                    collect(child)

        collect(tree.root)
        assert len(addresses) == tree.node_count
        assert len(set(addresses)) == len(addresses)
        assert all(pa % NODE_BYTES == 0 for pa in addresses)

    def test_node_capacity_respected(self):
        _f, _t, tree = build_system(500)

        def check(node):
            assert len(node.keys) <= MAX_KEYS
            if node.children:
                assert len(node.children) <= MAX_CHILDREN
                for child in node.children:
                    check(child)

        check(tree.root)

    def test_rebuild_releases_old_extent(self):
        frames, table, tree = build_system(64)
        free_before = frames.free_frames()
        table.insert(1, 0x7000_0000_0000, PAGE, 0x100_0000)
        tree.build(table)
        # Old extent freed, new allocated: free count within one page.
        assert abs(frames.free_frames() - free_before) <= 1

    def test_ensure_current_rebuilds_once(self):
        frames, table, tree = build_system(10)
        assert not tree.ensure_current(table)
        table.insert(1, 0x7000_0000_0000, PAGE, 0)
        assert tree.ensure_current(table)
        assert not tree.ensure_current(table)


class TestLookup:
    def test_lookup_matches_linear_search(self):
        _f, table, tree = build_system(300)
        for seg in table.segments_sorted()[::7]:
            for probe in (seg.vbase, seg.vbase + seg.length // 2,
                          seg.vbase + seg.length - 1):
                result = tree.lookup(seg.asid, probe)
                assert result.seg_id == seg.seg_id

    def test_lookup_in_gap_returns_predecessor(self):
        _f, table, tree = build_system(10)
        segs = table.segments_sorted()
        gap_va = segs[0].vbase + segs[0].length  # just past segment 0
        result = tree.lookup(1, gap_va)
        # Candidate is the predecessor; containment check (caller's job)
        # will reject it.
        assert result.seg_id == segs[0].seg_id
        assert not table.get(result.seg_id).contains(gap_va)

    def test_lookup_before_first_segment(self):
        _f, _t, tree = build_system(10)
        assert tree.lookup(1, 0x10).seg_id is None

    def test_path_length_equals_depth(self):
        _f, table, tree = build_system(2048)
        seg = table.segments_sorted()[1234]
        result = tree.lookup(1, seg.vbase + 5)
        assert len(result.node_addresses) == tree.depth
        assert result.node_addresses[0] == tree.root.pa

    def test_multi_asid_lookup(self):
        frames = FrameAllocator(256 * MB)
        table = OsSegmentTable()
        a = table.insert(1, 0x1000_0000, PAGE, 0)
        b = table.insert(2, 0x1000_0000, PAGE, PAGE)
        tree = IndexTree(frames)
        tree.build(table)
        assert tree.lookup(1, 0x1000_0000).seg_id == a.seg_id
        assert tree.lookup(2, 0x1000_0000).seg_id == b.seg_id

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=400),
           st.integers(min_value=0, max_value=10 ** 9))
    def test_lookup_correctness_property(self, n_segments, probe_seed):
        """Tree lookup + containment == authoritative table.find."""
        _f, table, tree = build_system(n_segments)
        rng = make_rng(probe_seed)
        segs = table.segments_sorted()
        for _ in range(20):
            seg = segs[rng.randrange(len(segs))]
            va = seg.vbase + rng.randrange(seg.length)
            assert tree.lookup(1, va).seg_id == seg.seg_id


class TestPackKey:
    def test_asid_dominates(self):
        assert pack_key(2, 0) > pack_key(1, 0xFFFF_FFFF_FFFF)

    def test_ordering_within_asid(self):
        assert pack_key(1, 0x2000) > pack_key(1, 0x1000)


class TestFillFactorValidation:
    def test_invalid_fill_factors_rejected(self):
        frames = FrameAllocator(16 * MB)
        with pytest.raises(ValueError):
            IndexTree(frames, leaf_fill=0)
        with pytest.raises(ValueError):
            IndexTree(frames, leaf_fill=7)
        with pytest.raises(ValueError):
            IndexTree(frames, internal_fill=1)
        with pytest.raises(ValueError):
            IndexTree(frames, internal_fill=8)
