"""Tests for cache lines, the set-associative cache, and the hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache import (
    CacheHierarchy,
    CacheLine,
    PERM_READ,
    PERM_RW,
    PermissionFault,
    SetAssociativeCache,
    STATE_MODIFIED,
    page_block_keys,
)
from repro.common.address import physical_block_key, virtual_block_key
from repro.common.params import CacheConfig, SystemConfig


class TestCacheLine:
    def test_synonym_bit_follows_namespace(self):
        assert CacheLine(physical_block_key(0x1000)).is_synonym
        assert not CacheLine(virtual_block_key(1, 0x1000)).is_synonym

    def test_permission_check_read_ok(self):
        CacheLine(0, permissions=PERM_READ).check_permission(is_write=False)

    def test_permission_fault_on_ro_write(self):
        line = CacheLine(0x42, permissions=PERM_READ)
        with pytest.raises(PermissionFault) as excinfo:
            line.check_permission(is_write=True)
        assert excinfo.value.block_key == 0x42
        assert excinfo.value.is_write

    def test_rw_allows_both(self):
        line = CacheLine(0, permissions=PERM_RW)
        line.check_permission(False)
        line.check_permission(True)


class TestSetAssociativeCache:
    def _cache(self, size=4096, ways=4, latency=2):
        return SetAssociativeCache(CacheConfig(size, ways, latency))

    def test_miss_then_hit(self):
        c = self._cache()
        assert c.lookup(100) is None
        c.insert(100)
        assert c.lookup(100) is not None

    def test_write_sets_dirty(self):
        c = self._cache()
        c.insert(5)
        line = c.lookup(5, is_write=True)
        assert line.dirty

    def test_lru_eviction(self):
        c = self._cache(size=128, ways=2)  # one set
        c.insert(0)
        c.insert(1)
        c.lookup(0)
        victim = c.insert(2)
        assert victim.key == 1

    def test_eviction_callback_sees_victim(self):
        c = self._cache(size=128, ways=2)
        seen = []
        c.on_eviction(seen.append)
        c.insert(0)
        c.insert(1)
        c.insert(2)
        assert [v.key for v in seen] == [0]

    def test_writeback_counted(self):
        c = self._cache(size=64, ways=1)  # a single one-line set
        c.insert(0, dirty=True)
        c.insert(1)
        assert c.stats["writebacks"] == 1

    def test_invalidate(self):
        c = self._cache()
        c.insert(9)
        assert c.invalidate(9).key == 9
        assert c.invalidate(9) is None

    def test_invalidate_many(self):
        c = self._cache()
        for k in range(6):
            c.insert(k)
        assert c.invalidate_many(range(4)) == 4
        assert c.occupancy() == 2

    def test_update_permissions(self):
        c = self._cache()
        c.insert(3)
        assert c.update_permissions(3, PERM_READ)
        assert c.probe(3).permissions == PERM_READ
        assert not c.update_permissions(999, PERM_READ)

    def test_resident_keys(self):
        c = self._cache()
        c.insert(1)
        c.insert(2)
        assert sorted(c.resident_keys()) == [1, 2]

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(CacheConfig(192, 1, 1))

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=4000), max_size=400))
    def test_capacity_invariant(self, keys):
        c = self._cache(size=1024, ways=4)  # 16 lines
        for k in keys:
            c.insert(k)
        assert c.occupancy() <= 16
        # Hit after insert unless evicted; most recently inserted always hit.
        if keys:
            assert c.probe(keys[-1]) is not None


def small_config(cores=2):
    import dataclasses
    return dataclasses.replace(
        SystemConfig(),
        cores=cores,
        l1=CacheConfig(1024, 2, 2),
        l2=CacheConfig(4096, 4, 6),
        llc=CacheConfig(16384, 8, 27),
    )


class TestCacheHierarchy:
    def test_fill_path_and_hit_levels(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0x4000)
        first = h.access(0, key, is_write=False)
        assert first.hit_level == "memory"
        assert first.llc_miss
        second = h.access(0, key, is_write=False)
        assert second.hit_level == "l1"
        assert not second.llc_miss

    def test_latency_accumulates_with_depth(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0x4000)
        miss = h.access(0, key, False)
        hit = h.access(0, key, False)
        assert miss.latency == 2 + 6 + 27
        assert hit.latency == 2

    def test_cross_core_llc_sharing(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0x8000)
        h.access(0, key, False)
        result = h.access(1, key, False)
        assert result.hit_level == "llc"

    def test_write_invalidates_remote_private_copies(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0x8000)
        h.access(0, key, False)
        h.access(1, key, False)
        h.access(0, key, True)  # core 0 writes
        assert h.l1[1].probe(key) is None
        assert h.l2[1].probe(key) is None
        assert h.stats["coherence_invalidations"] >= 1

    def test_modified_state_set_on_write(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0xC000)
        h.access(0, key, True)
        assert h.l1[0].probe(key).state == STATE_MODIFIED

    def test_inclusive_back_invalidation(self):
        h = CacheHierarchy(small_config(cores=1))
        # Fill more blocks than the LLC can hold in one set to force
        # eviction, then check inner copies are gone.
        sets = 16384 // (8 * 64)  # 32 sets
        keys = [virtual_block_key(1, (i * sets) << 6) for i in range(9)]
        for k in keys:
            h.access(0, k, False)
        evicted = [k for k in keys if h.llc.probe(k) is None]
        assert evicted, "LLC set overflow expected"
        for k in evicted:
            assert h.l1[0].probe(k) is None
            assert h.l2[0].probe(k) is None

    def test_flush_blocks_everywhere(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(2, 0x10000)
        h.access(0, key, True)
        h.access(1, key, False)
        dropped = h.flush_blocks([key])
        assert dropped >= 1
        assert h.probe_line(0, key) is None
        assert h.probe_line(1, key) is None

    def test_downgrade_blocks(self):
        h = CacheHierarchy(small_config())
        key = virtual_block_key(1, 0x14000)
        h.access(0, key, False)
        changed = h.downgrade_blocks([key], PERM_READ)
        assert changed == 1
        assert h.l1[0].probe(key).permissions == PERM_READ

    def test_memory_writeback_flag(self):
        h = CacheHierarchy(small_config(cores=1))
        sets = 16384 // (8 * 64)
        keys = [virtual_block_key(1, (i * sets) << 6) for i in range(9)]
        for k in keys:
            h.access(0, k, True)  # dirty everywhere
        assert h.stats["memory_writebacks"] >= 1

    def test_virtual_and_physical_keys_coexist(self):
        h = CacheHierarchy(small_config())
        vkey = virtual_block_key(1, 0x2000)
        pkey = physical_block_key(0x2000)
        h.access(0, vkey, False)
        h.access(0, pkey, False)
        assert h.probe_line(0, vkey) is not None
        assert h.probe_line(0, pkey) is not None
        assert h.probe_line(0, pkey).is_synonym
        assert not h.probe_line(0, vkey).is_synonym


class TestPageBlockKeys:
    def test_sixty_four_blocks_per_page(self):
        base = virtual_block_key(1, 0x4000)
        keys = page_block_keys(base)
        assert len(keys) == 64
        assert keys[0] == base
        assert keys[-1] == base + 63
