"""The simulation service, end to end — no network setup required.

Boots a `JobService` + `ServeServer` on an ephemeral port in this
process, then plays three clients against it over real HTTP:

1. a cold submission that runs one simulation;
2. five concurrent duplicates that all coalesce onto that execution
   (exactly one simulation total, byte-identical result bodies);
3. a resubmission after the result landed in the on-disk cache —
   answered straight from disk, zero simulations.

Finishes with the service's own scorecard from ``/metrics``.  The same
flow works against a long-lived ``python -m repro serve`` process; see
``docs/serving.md``.
"""

import json
import tempfile
import threading
import time
import urllib.request

from repro.exec import Job, ResultCache, SerialExecutor
from repro.serve import JobService, ServeServer

ACCESSES = 20_000
WARMUP = 4_000
CLIENTS = 5


def submit(base, job):
    body = json.dumps(job.to_json_dict()).encode()
    with urllib.request.urlopen(base + "/jobs", data=body) as resp:
        return json.loads(resp.read())


def poll(base, fingerprint, timeout=300):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with urllib.request.urlopen(base + f"/jobs/{fingerprint}") as resp:
            doc = json.loads(resp.read())
            if resp.status == 200:
                return doc
        time.sleep(0.05)
    raise TimeoutError(fingerprint)


def main():
    job = Job("gups", "hybrid_tlb", accesses=ACCESSES, warmup=WARMUP)
    with tempfile.TemporaryDirectory() as cache_dir:
        executor = SerialExecutor()
        service = JobService(cache=ResultCache(cache_dir),
                             executor=executor)
        with ServeServer(service) as server:
            try:
                print(f"service up on {server.url}")

                print(f"\n-- {CLIENTS} concurrent clients, one job --")
                results = [None] * CLIENTS
                def client(i):
                    status = submit(server.url, job)
                    results[i] = poll(server.url, status["fingerprint"])
                threads = [threading.Thread(target=client, args=(i,))
                           for i in range(CLIENTS)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                ipcs = {round(r["ipc"], 4) for r in results}
                print(f"simulations executed: {executor.submitted}")
                print(f"all {CLIENTS} clients agree on IPC: {ipcs}")

                print("\n-- resubmission to the same service: replayed --")
                status = submit(server.url, job)
                print(f"disposition: {status['disposition']}")

                with urllib.request.urlopen(server.url + "/metrics") as resp:
                    text = resp.read().decode()
                print("\n-- /metrics scorecard --")
                for line in text.splitlines():
                    if (line.startswith("repro_serve_submissions_total")
                            or line.startswith("repro_serve_jobs_total")):
                        print(f"  {line}")
            finally:
                service.drain(timeout=60)
                service.close()

        print("\n-- service restart: answered from the disk cache --")
        restarted_exec = SerialExecutor()
        service = JobService(cache=ResultCache(cache_dir),
                             executor=restarted_exec)
        with ServeServer(service) as server:
            try:
                status = submit(server.url, job)
                print(f"disposition: {status['disposition']}")
                print(f"simulations executed: {restarted_exec.submitted}")
            finally:
                service.close()


if __name__ == "__main__":
    main()
