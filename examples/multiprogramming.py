#!/usr/bin/env python
"""Multiprogramming: context switches and per-process filter state.

Four workloads time-share two cores under the hybrid design.  Each
context switch charges the OS path plus the on-chip synonym-filter load
the paper describes (two 1K-bit Bloom filters read from memory,
Section III-B).  ASID-tagged TLBs, caches, and filters mean no structure
is flushed on a switch — the point of the 16-bit ASID.
"""

import dataclasses

from repro.common.params import SystemConfig
from repro.core import ConventionalMmu, HybridMmu
from repro.osmodel import Kernel
from repro.sim import ScheduledSimulator, lay_out

NAMES = ("postgres", "omnetpp", "astar", "stream")
ACCESSES = 4_000


def run(mmu_cls, label):
    config = dataclasses.replace(SystemConfig(), cores=2)
    kernel = Kernel(config)
    workloads = [lay_out(name, kernel, seed=3 + i)
                 for i, name in enumerate(NAMES)]
    mmu = mmu_cls(kernel, config)
    sim = ScheduledSimulator(mmu, workloads, quantum=1000)
    result = sim.run(accesses_per_workload=ACCESSES)
    print(f"\n-- {label} --")
    print(f"context switches: {result.context_switches}, "
          f"switch overhead: {result.switch_cycles:.0f} cycles "
          f"({result.switch_cycles / result.total_cycles:.2%} of runtime)")
    for name, r in result.per_workload.items():
        print(f"  {name:<10} ipc={r.ipc:.4f}")
    print(f"aggregate IPC: {result.aggregate_ipc():.4f}")
    return result


def main() -> None:
    print("=== 4 workloads on 2 cores, round-robin quanta ===")
    conventional = run(ConventionalMmu, "conventional baseline")
    hybrid = run(HybridMmu, "hybrid virtual caching")
    per_switch_delta = (hybrid.switch_cycles / hybrid.context_switches
                        - conventional.switch_cycles
                        / conventional.context_switches)
    print(f"\nfilter-load cost per switch (hybrid extra): "
          f"{per_switch_delta:.0f} cycles")
    speedup = hybrid.aggregate_ipc() / conventional.aggregate_ipc()
    print(f"hybrid aggregate speedup: {speedup:.3f}x "
          f"(filter loads are noise next to the TLB wins)")


if __name__ == "__main__":
    main()
