#!/usr/bin/env python
"""The benchmark regression gate, end to end and in memory.

1. run the canonical model-metric suite and assemble a
   ``repro.bench/v2`` baseline (what ``repro bench record`` writes);
2. re-run it and compare — model metrics are deterministic, so the gate
   passes with every delta at exactly 0%;
3. inject a 20% IPC regression into a copy of the "current" document and
   watch the same comparison fail.

Equivalent CLI: ``repro bench record --out baseline.json`` then
``repro bench check --baseline baseline.json``.
"""

import copy

from repro.bench import (
    compare_baselines,
    jobs_from_baseline,
    make_baseline,
    run_suite,
    suite_jobs,
)

ACCESSES = 3_000
WARMUP = 1_000
POINTS = [("stream/baseline", "stream", "baseline"),
          ("stream/hybrid_tlb", "stream", "hybrid_tlb")]


def main() -> None:
    print("-- recording the baseline --")
    baseline = make_baseline(run_suite(
        suite_jobs(points=POINTS, accesses=ACCESSES, warmup=WARMUP)))
    for entry in baseline["benchmarks"]:
        metrics = "  ".join(f"{k}={v:.4g}"
                            for k, v in sorted(entry["metrics"].items()))
        print(f"{entry['name']:<22} {metrics}")

    print("\n-- re-running the suite the baseline describes --")
    current = make_baseline(run_suite(jobs_from_baseline(baseline)))
    report = compare_baselines(baseline, current, threshold_pct=10.0)
    print(f"verdict: {'PASS' if report.ok else 'FAIL'} "
          f"({len(report.deltas)} metric deltas, "
          f"{len(report.regressions)} regressions)")

    print("\n-- injecting a 20% IPC regression --")
    broken = copy.deepcopy(current)
    broken["benchmarks"][0]["metrics"]["ipc"] *= 0.8
    report = compare_baselines(baseline, broken, threshold_pct=10.0)
    print(f"verdict: {'PASS' if report.ok else 'FAIL'}")
    for delta in report.regressions:
        print(f"  {delta.benchmark} {delta.metric}: "
              f"{delta.baseline:.4g} -> {delta.current:.4g} "
              f"({delta.change_pct:+.1f}%) {delta.status}")


if __name__ == "__main__":
    main()
