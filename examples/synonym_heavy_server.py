#!/usr/bin/env python
"""Synonym-heavy server scenario (the paper's postgres case).

Four database worker processes share a buffer pool (two thirds of
their footprint) mapped at
*different* virtual addresses in each process — true synonyms.  This is
the adversarial case for virtual caching: the synonym filter must catch
every shared access (correctness) while letting the ~84% of private
accesses bypass the TLBs (efficiency).

The script demonstrates:

1. the per-process Bloom synonym filters catching all shared accesses;
2. false-positive accounting (guaranteed < the paper's 0.5%);
3. a private→shared transition at runtime (the OS updates the filters
   and flushes the stale virtually addressed cache lines);
4. coherence across synonyms: a write through one process's mapping is
   visible at the other process's mapping because both name the block by
   its single physical address.
"""

import dataclasses

from repro.common import SystemConfig
from repro.core import HybridMmu
from repro.osmodel import Kernel
from repro.sim import Simulator, lay_out

ACCESSES = 40_000
WARMUP = 10_000


def main() -> None:
    print("=== Synonym-heavy server (postgres-like) ===\n")
    config = dataclasses.replace(SystemConfig().with_llc_size(8 * 1024 * 1024),
                                 cores=4)
    kernel = Kernel(config)
    workload = lay_out("postgres", kernel)
    mmu = HybridMmu(kernel, config, delayed="tlb")

    result = Simulator(mmu).run(workload, accesses=ACCESSES, warmup=WARMUP)
    hybrid = result.group("hybrid")
    total = hybrid["accesses"]
    print(f"accesses:                {total}")
    print(f"shared-area fraction:    {workload.shared_area_fraction():.2f}")
    print(f"TLB bypasses (private):  {hybrid['tlb_bypasses']} "
          f"({100 * mmu.tlb_access_reduction():.1f}%)")
    print(f"true synonym accesses:   {hybrid['true_synonym_accesses']}")
    print(f"false positives:         {hybrid.get('false_positive_accesses', 0)} "
          f"({100 * mmu.false_positive_rate():.3f}% — paper bound: <0.5%)")

    # -- Runtime private→shared transition ---------------------------- #
    print("\n-- private->shared transition --")
    process = workload.processes[0]
    vma = workload.private_vmas[process.asid][0]
    candidate_before = process.synonym_filter.is_synonym_candidate(vma.vbase)
    kernel.share_existing_pages(process, vma.vbase, 4 * 4096)
    candidate_after = process.synonym_filter.is_synonym_candidate(vma.vbase)
    print(f"filter reports candidate: before={candidate_before}, "
          f"after={candidate_after}")

    # -- Synonym coherence through the single physical name ----------- #
    print("\n-- synonym coherence --")
    p0, p1 = workload.processes[0], workload.processes[1]
    va0 = workload.shared_vmas[p0.asid].vbase
    va1 = workload.shared_vmas[p1.asid].vbase
    out0 = mmu.access(0, p0.asid, va0, is_write=True)
    out1 = mmu.access(1, p1.asid, va1, is_write=False)
    assert out0.translated_pa == out1.translated_pa, "synonyms must share a PA"
    print(f"process {p0.asid} wrote PA {out0.translated_pa:#x} via VA {va0:#x}")
    print(f"process {p1.asid} read  PA {out1.translated_pa:#x} via VA {va1:#x}")
    print("both mappings resolved to one physical block — no stale copies.")


if __name__ == "__main__":
    main()
