#!/usr/bin/env python
"""Quickstart: compare translation architectures on one workload.

Builds a simulated system (Table IV configuration), lays out the GUPS
random-access workload, and runs it under four MMU front-ends:

* the conventional physically addressed baseline,
* hybrid virtual caching with a delayed TLB,
* hybrid virtual caching with many-segment delayed translation,
* the ideal (no TLB miss) upper bound.

Prints normalized performance, the hybrid design's TLB-bypass rate, and
the translation-energy comparison.
"""

from repro.energy import EnergyModel
from repro.sim import compare_configs, run_workload

ACCESSES = 30_000
WARMUP = 10_000


def main() -> None:
    print("=== Hybrid Virtual Caching quickstart: GUPS ===\n")

    row = compare_configs(
        "gups",
        mmu_names=("baseline", "hybrid_tlb", "hybrid_segments", "ideal"),
        accesses=ACCESSES, warmup=WARMUP,
    )
    normalized = row.normalized()
    print("Performance normalized to the physical baseline:")
    for config_name, speedup in normalized.items():
        bar = "#" * int(speedup * 30)
        print(f"  {config_name:<18} {speedup:5.3f}  {bar}")

    hybrid = row.results["hybrid_segments"]
    bypasses = hybrid.counter("hybrid", "tlb_bypasses")
    accesses = hybrid.counter("hybrid", "accesses")
    print(f"\nHybrid TLB bypass rate: {100.0 * bypasses / accesses:.1f}% "
          f"({bypasses}/{accesses} accesses never touch a core-side TLB)")

    energy = EnergyModel()
    base = run_workload("gups", "baseline", ACCESSES, WARMUP)
    # Count the I-side TLB/filter probes too (one per instruction fetch),
    # as the paper's energy accounting does.
    from repro.workloads import spec
    fetches = spec("gups").instructions_for(ACCESSES + WARMUP)
    base_breakdown = energy.baseline_translation_energy(
        base.stats, instruction_fetches=fetches)
    hybrid_breakdown = energy.hybrid_translation_energy(
        hybrid.stats, instruction_fetches=fetches)
    base_total = energy.total(base_breakdown)
    hybrid_total = energy.total(hybrid_breakdown)
    print(f"\nTranslation energy: baseline {base_total / 1e6:.2f} uJ, "
          f"hybrid {hybrid_total / 1e6:.2f} uJ "
          f"({100 * (1 - hybrid_total / base_total):.0f}% reduction)")


if __name__ == "__main__":
    main()
