#!/usr/bin/env python
"""Parallel, cached experiment execution with the ``repro.exec`` engine.

Every experiment helper in the repo builds an ``ExperimentPlan`` of
frozen jobs, so an N-point sweep is embarrassingly parallel.  This tour:

1. runs a delayed-TLB x LLC-size grid serially and in a process pool,
   showing the wall-clock ratio and that the results are bit-identical;
2. reruns the same grid against an on-disk ``ResultCache`` and shows
   the warm rerun performing zero new simulations;
3. demonstrates per-job error capture: a sweep containing an invalid
   point still completes its valid points.
"""

import os
import tempfile
import time

from repro.exec import (ExperimentPlan, Job, ParallelExecutor, ResultCache,
                        SerialExecutor)
from repro.sim.sweep import sweep_grid

ACCESSES = 40_000
WARMUP = 10_000
WORKERS = min(4, os.cpu_count() or 1)

GRID = {
    "delayed_tlb.entries": [1024, 4096],
    "llc.size_bytes": [1 << 20, 2 << 20],
}


def parallel_section() -> None:
    print("-- serial vs. parallel grid sweep (gups x "
          f"{len(GRID['delayed_tlb.entries']) * len(GRID['llc.size_bytes'])} "
          "points) --")
    t0 = time.perf_counter()
    serial = sweep_grid("gups", "hybrid_tlb", GRID,
                        accesses=ACCESSES, warmup=WARMUP)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = sweep_grid("gups", "hybrid_tlb", GRID,
                          accesses=ACCESSES, warmup=WARMUP,
                          executor=ParallelExecutor(workers=WORKERS))
    parallel_s = time.perf_counter() - t0

    identical = all(
        a["result"].cycles == b["result"].cycles
        and a["result"].stats == b["result"].stats
        for a, b in zip(serial, parallel))
    print(f"serial:   {serial_s:6.2f}s")
    print(f"parallel: {parallel_s:6.2f}s  ({WORKERS} workers, "
          f"{serial_s / parallel_s:.1f}x)")
    if (os.cpu_count() or 1) < 2:
        print("(single-CPU machine: pool overhead without speedup — "
              "the ratio approaches the worker count on multi-core hosts)")
    print(f"bit-identical results: {identical}")


def cache_section() -> None:
    print("\n-- fingerprint-keyed result cache --")
    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCache(cache_dir)
        cold = SerialExecutor()
        sweep_grid("gups", "hybrid_tlb", GRID,
                   accesses=ACCESSES, warmup=WARMUP,
                   executor=cold, cache=cache)
        warm = SerialExecutor()
        sweep_grid("gups", "hybrid_tlb", GRID,
                   accesses=ACCESSES, warmup=WARMUP,
                   executor=warm, cache=cache)
        print(f"cold run simulated {cold.submitted} points")
        print(f"warm rerun simulated {warm.submitted} points "
              f"({cache.hits} served from cache)")


def error_section() -> None:
    print("\n-- per-job error capture --")
    plan = ExperimentPlan([
        Job("stream", "baseline", accesses=ACCESSES, warmup=WARMUP),
        Job("stream", "no_such_mmu", accesses=ACCESSES, warmup=WARMUP),
    ])
    results = plan.run()
    ok = results.results()
    errors = results.errors()
    print(f"{len(ok)} points succeeded, {len(errors)} captured as JobError")
    for error in errors:
        print(f"  {error.workload}/{error.mmu}: "
              f"{error.error_type}: {error.message[:60]}...")


def main() -> None:
    print("=== repro.exec engine tour ===\n")
    parallel_section()
    cache_section()
    error_section()


if __name__ == "__main__":
    main()
