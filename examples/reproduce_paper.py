#!/usr/bin/env python
"""Reproduce every paper artifact at demo scale, in one run.

Runs miniature versions of each experiment (smaller traces than the
`benchmarks/` modules, so the whole tour finishes in a few minutes) and
prints the regenerated tables and figures next to the paper's claims.

For the full-scale regeneration with assertions, run:

    pytest benchmarks/ --benchmark-only -s
"""

import dataclasses
import time

from repro.common.params import SystemConfig
from repro.common.stats import mpki
from repro.core import ConventionalMmu, HybridMmu
from repro.energy import EnergyModel
from repro.osmodel import Kernel
from repro.sim import Simulator, geometric_mean, lay_out, run_workload
from repro.sim.report import series_table
from repro.virt import Hypervisor, VirtConventionalMmu, VirtHybridMmu
from repro.workloads import spec

SMALL = dict(accesses=8_000, warmup=12_000)


def banner(title, claim):
    print(f"\n{'=' * 72}\n{title}\n  paper: {claim}\n{'-' * 72}")


def table2():
    banner("Table II — synonym filtering",
           "FP < 0.5%; access reduction 84-99.9% (postgres the outlier)")
    for name in ("postgres", "apache"):
        cores = spec(name).sharing.processes
        config = dataclasses.replace(
            SystemConfig().with_llc_size(8 * 1024 * 1024), cores=cores)
        kernel = Kernel(config)
        workload = lay_out(name, kernel)
        mmu = HybridMmu(kernel, config, delayed="tlb")
        Simulator(mmu).run(workload, **SMALL)
        print(f"  {name:<10} fp={100 * mmu.false_positive_rate():.3f}%  "
              f"access reduction={100 * mmu.tlb_access_reduction():.1f}%")


def figure4():
    banner("Figure 4 — delayed-TLB MPKI vs. size",
           "GUPS barely improves with 32x the entries; omnetpp collapses")
    sizes = (1024, 8192, 32768)
    rows = {}
    for name in ("gups", "omnetpp"):
        row = []
        for entries in sizes:
            config = SystemConfig().with_delayed_tlb_entries(entries)
            result = run_workload(name, "hybrid_tlb", config=config, **SMALL)
            row.append(result.tlb_mpki())
        rows[name] = row
    print(series_table(rows, [f"{s // 1024}K" for s in sizes]))


def figure9():
    banner("Figure 9 — native performance",
           "+10.7% average (memory-intensive); many-seg+SC ~ ideal TLB")
    configs = ("baseline", "hybrid_segments", "ideal")
    speedups = {c: [] for c in configs}
    for name in ("gups", "mcf", "omnetpp"):
        ipcs = {c: run_workload(name, c, **SMALL).ipc for c in configs}
        line = "  ".join(f"{c}={ipcs[c] / ipcs['baseline']:.3f}"
                         for c in configs)
        print(f"  {name:<10} {line}")
        for c in configs:
            speedups[c].append(ipcs[c] / ipcs["baseline"])
    print(f"  geomean    hybrid_segments="
          f"{geometric_mean(speedups['hybrid_segments']):.3f} "
          f"ideal={geometric_mean(speedups['ideal']):.3f}")


def figure10():
    banner("Figure 10* — virtualized performance",
           "+31.7% vs. a 2-D translation-cache baseline")
    ipcs = {}
    for kind in ("baseline", "hybrid"):
        hypervisor = Hypervisor()
        vm = hypervisor.create_vm("vm")
        workload = lay_out("mcf", vm.guest_kernel)
        mmu = (VirtConventionalMmu(hypervisor, vm) if kind == "baseline"
               else VirtHybridMmu(hypervisor, vm, delayed="segments"))
        ipcs[kind] = Simulator(mmu).run(workload, accesses=6_000,
                                        warmup=8_000).ipc
    print(f"  mcf under a VM: hybrid/baseline = "
          f"{ipcs['hybrid'] / ipcs['baseline']:.2f}x")


def figure11():
    banner("Figure 11* — translation energy", "-60% translation power")
    energy = EnergyModel()
    name = "omnetpp"
    base = run_workload(name, "baseline", accesses=8_000, warmup=25_000)
    hybrid = run_workload(name, "hybrid_tlb", accesses=8_000, warmup=25_000)
    fetches = spec(name).instructions_for(33_000)
    b = energy.baseline_translation_energy(base.stats,
                                           instruction_fetches=fetches)
    h = energy.hybrid_translation_energy(hybrid.stats,
                                         instruction_fetches=fetches)
    extra = energy.tag_extension_energy(hybrid.stats)
    print(f"  {name}: reduction = "
          f"{100 * energy.reduction(b, h, proposed_extra=extra):.1f}%")


def main():
    start = time.time()
    print("Hybrid Virtual Caching (ISCA 2016) — demo-scale reproduction")
    table2()
    figure4()
    figure9()
    figure10()
    figure11()
    print(f"\nDone in {time.time() - start:.0f}s.  Full-scale artifacts: "
          f"pytest benchmarks/ --benchmark-only -s")


if __name__ == "__main__":
    main()
