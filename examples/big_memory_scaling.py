#!/usr/bin/env python
"""Big-memory scaling: why fixed-granularity delayed TLBs are not enough.

Reproduces the paper's Section IV argument in miniature:

1. sweep the delayed TLB from 1K to 32K entries on a TLB-hostile workload
   (GUPS) and a locality-bearing one (omnetpp) — GUPS barely improves;
2. switch GUPS to many-segment delayed translation — misses collapse
   because three segments cover the entire footprint;
3. show the memcached allocation profile creating hundreds of segments
   and the 32-entry RMM range TLB thrashing on it, while the 2048-entry
   delayed segment table absorbs it.
"""

from repro.common import SystemConfig, mpki
from repro.osmodel import Kernel
from repro.segtrans import RangeTlb
from repro.sim import lay_out, run_workload, sweep_delayed_tlb

ACCESSES = 25_000
WARMUP = 8_000


def sweep_section() -> None:
    print("-- delayed TLB size sweep (misses per kilo-instruction) --")
    sizes = (1024, 4096, 16384, 32768)
    header = "  ".join(f"{s // 1024}K".rjust(7) for s in sizes)
    print(f"{'workload':<10} {header}")
    for name in ("gups", "omnetpp"):
        results = sweep_delayed_tlb(name, sizes, accesses=ACCESSES,
                                    warmup=WARMUP)
        row = "  ".join(
            f"{r.tlb_mpki():7.2f}" for r in results
        )
        print(f"{name:<10} {row}")


def segment_section() -> None:
    print("\n-- many-segment translation on GUPS --")
    result = run_workload("gups", "hybrid_segments", ACCESSES, WARMUP)
    walks = result.counter("many_segment", "full_walks")
    sc_hits = result.counter("many_segment", "sc_hits")
    print(f"full segment walks: {walks}  "
          f"(MPKI {mpki(walks, result.instructions):.3f})")
    print(f"segment-cache hits: {sc_hits}")


def rmm_section() -> None:
    print("\n-- RMM (32 ranges) vs. many segments on memcached --")
    kernel = Kernel(SystemConfig())
    workload = lay_out("memcached", kernel)
    live = workload.live_segments()
    print(f"live segments after allocation: {live}")

    range_tlb = RangeTlb(kernel.segment_table, entries=32)
    instructions = 0
    stacks = workload.stack_vmas
    for record in workload.trace(ACCESSES):
        instructions += 1 + record.gap
        stack = stacks.get(record.asid)
        if stack is not None and stack.contains(record.va):
            continue  # the stack is demand-paged, not segment-backed
        range_tlb.lookup(record.asid, record.va)
    print(f"RMM range-TLB miss MPKI: "
          f"{mpki(range_tlb.miss_count(), instructions):.2f} "
          f"(hit rate {100 * range_tlb.stats.hit_rate():.1f}%)")
    print("the 2048-entry delayed segment table holds every segment; its "
          "only misses are cold.")


def main() -> None:
    print("=== Big-memory translation scaling ===\n")
    sweep_section()
    segment_section()
    rmm_section()


if __name__ == "__main__":
    main()
