#!/usr/bin/env python
"""Offline trace analytics: capture once, slice many ways.

A parallel delayed-TLB sweep records per-access pipeline events into one
shard per job (`BASE.<fingerprint>.jsonl` — the same files
`repro sweep --workers N --trace-out BASE` writes), then the offline
reader reconstructs what happened without touching the simulator again:

1. per-run cycle attribution — the front/cache/delayed/DRAM split of
   every configuration in the sweep;
2. per-stage latency histograms merged across all runs;
3. the top-N slowest accesses, with the stage events that made them slow
   — the tail the paper's delayed-translation argument is about.

Equivalent CLI: ``repro sweep gups --workers 4 --trace-out t.jsonl``
then ``repro trace view t.jsonl.*.jsonl``.
"""

import tempfile
from pathlib import Path

from repro.exec import ParallelExecutor
from repro.obs import TraceSpec, read_trace
from repro.sim import sweep_delayed_tlb

WORKLOAD = "gups"
SIZES = (1024, 4096, 16384)
ACCESSES = 12_000
WARMUP = 3_000
WORKERS = 3
TOP_N = 3


def capture(base: Path) -> list:
    spec = TraceSpec(base=base, sample_every=2)
    sweep_delayed_tlb(WORKLOAD, list(SIZES), accesses=ACCESSES,
                      warmup=WARMUP, trace_spec=spec,
                      executor=ParallelExecutor(workers=WORKERS))
    return spec.shards()


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        shards = capture(Path(tmp) / "sweep.jsonl")
        print(f"captured {len(shards)} shard(s), one per job")
        view = read_trace(shards, top_n=TOP_N)

        print("\n-- cycle attribution per run --")
        for run in view.runs:
            attribution = run.attribution()
            total = max(1, sum(attribution.values()))
            split = "  ".join(f"{phase}={100 * c / total:5.1f}%"
                              for phase, c in attribution.items())
            print(f"{run.label:<40} {split}")

        overall = view.overall()
        print("\n-- stage latencies, merged across the sweep --")
        for name in sorted(overall.stage_histograms):
            h = overall.stage_histograms[name]
            if not h.count:
                continue
            print(f"{name:<14} n={h.count:<7} mean={h.mean():6.1f} "
                  f"p99<={h.percentile(99)}")

        print(f"\n-- top {TOP_N} slowest accesses --")
        for record in overall.slowest:
            phases = " ".join(f"{k.removesuffix('_cycles')}={v}"
                              for k, v in record.phase_cycles.items() if v)
            print(f"va=0x{record.va:x} hit={record.hit_level} "
                  f"total={record.total_cycles} cycles ({phases})")


if __name__ == "__main__":
    main()
