#!/usr/bin/env python
"""Live telemetry end to end: registry, heartbeats, /metrics, history.

Long experiment campaigns used to run dark — this tour shows the
telemetry layer that closes the gap:

1. a plan runs with a :class:`MetricsRegistry` and a heartbeat channel
   attached; a :class:`HeartbeatMonitor` folds worker beats into live
   ``repro_worker_*`` gauges while a stdlib HTTP server exposes the
   registry on ``/metrics`` in Prometheus text format, scraped here
   mid-run with ``urllib``;
2. the deterministic end-of-plan fold is demonstrated by re-running the
   same plan on a process pool and comparing the rendered exposition
   byte for byte;
3. the results are ingested into a :class:`MetricsStore` (a SQLite
   file) and one metric's cross-run trend is printed — the same store
   ``repro db ingest | query | trend`` and ``repro bench check --db``
   use.

CLI equivalent: ``repro compare gups --live --metrics-port 0
--metrics-out metrics.jsonl`` followed by ``repro db ingest``.
"""

import os
import tempfile
import urllib.request

from repro.exec import ExperimentPlan, Job, ParallelExecutor, SerialExecutor
from repro.obs.heartbeat import BeatSpec, HeartbeatMonitor, open_beat_channel
from repro.obs.metrics import (MetricsRegistry, MetricsServer,
                               render_prometheus)
from repro.obs.store import MetricsStore, format_trend

ACCESSES = 30_000
WARMUP = 10_000
WORKERS = min(4, os.cpu_count() or 1)
MMUS = ("baseline", "hybrid_tlb", "hybrid_segments")


def build_jobs():
    return [Job(workload="gups", mmu=mmu, accesses=ACCESSES,
                warmup=WARMUP, seed=42) for mmu in MMUS]


def run_with_telemetry(executor, parallel):
    """One plan run with registry + heartbeats; returns the registry
    and the plan results."""
    registry = MetricsRegistry()
    channel, manager = open_beat_channel(parallel)
    monitor = HeartbeatMonitor(channel, registry=registry)
    monitor.start()
    try:
        results = ExperimentPlan(build_jobs()).run(
            executor=executor, metrics=registry,
            beat=BeatSpec(queue=channel, every=1024))
    finally:
        monitor.stop()
        if manager is not None:
            manager.shutdown()
    return registry, monitor, results


def live_section():
    print("-- live run with a /metrics endpoint --")
    registry, monitor, _results = run_with_telemetry(SerialExecutor(),
                                                     parallel=False)
    with MetricsServer(registry, port=0) as server:
        url = f"http://{server.host}:{server.port}/metrics"
        body = urllib.request.urlopen(url).read().decode("utf-8")
    type_lines = [line for line in body.splitlines()
                  if line.startswith("# TYPE")]
    print(f"scraped {url}: {len(body)} bytes, "
          f"{len(type_lines)} metric families")
    for line in type_lines:
        print(f"  {line}")
    print(f"heartbeats seen: {monitor.beats_seen} "
          f"across {len(monitor.statuses)} job(s)")
    return registry


def determinism_section(serial_registry):
    print()
    print("-- the metric-identity guarantee --")
    parallel_registry, _monitor, _results = run_with_telemetry(
        ParallelExecutor(workers=WORKERS), parallel=True)
    serial_text = render_prometheus(serial_registry)
    parallel_text = render_prometheus(parallel_registry)
    print(f"serial exposition:   {len(serial_text)} bytes")
    print(f"parallel exposition: {len(parallel_text)} bytes "
          f"({WORKERS} workers)")
    print(f"byte-identical exposition: {serial_text == parallel_text}")


def store_section(results):
    print()
    print("-- cross-run metrics store --")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "history.sqlite")
        with MetricsStore(path) as store:
            for job in build_jobs():
                doc = results.result(job).to_json_dict()
                # The manifest records only the MMU *class* ("hybrid"
                # for both hybrid variants); the config name keeps the
                # store rows distinct, exactly as the CLI records it.
                doc["config"] = job.mmu
                store.ingest(doc, source="live_telemetry example")
            print(f"ingested {len(store)} run(s) into {os.path.basename(path)}")
            print(format_trend(store.trend("ipc"), "ipc"))


def main():
    registry = live_section()
    determinism_section(registry)
    _registry, _monitor, results = run_with_telemetry(SerialExecutor(),
                                                      parallel=False)
    store_section(results)


if __name__ == "__main__":
    main()
