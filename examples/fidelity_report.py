"""Build the paper-fidelity HTML report, measuring the hard claims live.

Most scorecard claims are extracted straight from recorded documents
(compare documents → the native-speedup headline, sweeps → Figure 4),
but some — translation energy, the virtualized speedup, Table I's
sharing fractions — have no standard document kind.  This example shows
the escape hatch: measure them with the repo's own models, pack them
into a ``repro.fidelity/v1`` measurement document, and feed that to the
report builder alongside the committed sample documents in
``examples/data/``.

Run::

    PYTHONPATH=src python examples/fidelity_report.py

writes ``fidelity_report.html`` next to this script and prints the
scorecard summary.  (The committed ``examples/data/fidelity_sample.json``
was produced by :func:`measure_claims` at the same scales.)
"""

from __future__ import annotations

import json
from pathlib import Path

import dataclasses

from repro.common.params import SegmentTranslationConfig, SystemConfig
from repro.core import HybridMmu
from repro.energy import EnergyModel
from repro.osmodel import Kernel
from repro.report import (ReportBundle, build_report, evaluate_scorecard,
                          fidelity_doc)
from repro.segtrans import IndexCache
from repro.sim import Simulator, geometric_mean, lay_out, run_workload
from repro.virt import Hypervisor, VirtConventionalMmu, VirtHybridMmu
from repro.workloads import spec

#: Virtualized runs: short windows are enough for the IPC ratio.
ACCESSES = 4_000
WARMUP = 6_000
VIRT_WORKLOADS = ("xalancbmk", "omnetpp", "astar")

#: Energy runs: the reduction is a steady-state property — the filters
#: must be trained before the measured window, so warm up much longer.
ENERGY_ACCESSES = 25_000
ENERGY_WARMUP = 50_000
ENERGY_WORKLOADS = ("omnetpp", "astar")

#: Figure 7: index-tree lookups per fragmented workload.
FIG7_LOOKUPS = 5_000
FIG7_WORKLOADS = ("xalancbmk", "tigr", "memcached", "omnetpp")

#: Table II: the synonym-filter study (postgres is the paper's worst
#: case for TLB-access reduction, so it alone bounds both claims).
TABLE2_ACCESSES = 15_000
TABLE2_WARMUP = 30_000

#: Table III: apps the paper calls out for under-used eager allocations.
TABLE3_WORKLOADS = ("memcached", "tigr", "xalancbmk", "mcf")

DATA_DIR = Path(__file__).parent / "data"
OUT = Path(__file__).parent / "fidelity_report.html"


def measure_energy_reduction() -> float:
    """Figure 11 style: translation energy, baseline vs. hybrid (%)."""
    reductions = []
    for name in ENERGY_WORKLOADS:
        energy = EnergyModel()
        base = run_workload(name, "baseline",
                            accesses=ENERGY_ACCESSES, warmup=ENERGY_WARMUP)
        hybrid = run_workload(name, "hybrid_tlb",
                              accesses=ENERGY_ACCESSES, warmup=ENERGY_WARMUP)
        fetches = spec(name).instructions_for(ENERGY_ACCESSES + ENERGY_WARMUP)
        b = energy.baseline_translation_energy(base.stats,
                                               instruction_fetches=fetches)
        h = energy.hybrid_translation_energy(hybrid.stats,
                                             instruction_fetches=fetches)
        tag_extra = energy.tag_extension_energy(hybrid.stats)
        reductions.append(energy.reduction(b, h, proposed_extra=tag_extra))
    return 100.0 * sum(reductions) / len(reductions)


def measure_virt_speedup() -> float:
    """Figure 10 style: two-step delayed translation vs. 2-D walks
    (geomean % gain across memory-intensive workloads)."""
    ratios = []
    for name in VIRT_WORKLOADS:
        ipcs = {}
        for key, delayed in (("base", None), ("seg", "segments")):
            hypervisor = Hypervisor()
            vm = hypervisor.create_vm(f"vm-{name}")
            workload = lay_out(name, vm.guest_kernel)
            mmu = (VirtConventionalMmu(hypervisor, vm) if delayed is None
                   else VirtHybridMmu(hypervisor, vm, delayed=delayed))
            result = Simulator(mmu).run(workload, accesses=ACCESSES,
                                        warmup=WARMUP)
            ipcs[key] = result.ipc
        ratios.append(ipcs["seg"] / ipcs["base"])
    return 100.0 * (geometric_mean(ratios) - 1.0)


def measure_postgres_sharing() -> float:
    """Table I style: postgres r/w shared memory area fraction."""
    workload = lay_out("postgres", Kernel(SystemConfig()))
    return workload.shared_area_fraction()


def measure_index_cache_hit() -> float:
    """Figure 7 style: 8 KB index-cache hit rate over real workloads
    with segments split ~10 ways to inject external fragmentation."""
    kernel = Kernel(SystemConfig(), segment_table_capacity=16384)
    workloads = [lay_out(name, kernel, seed=11 + i)
                 for i, name in enumerate(FIG7_WORKLOADS)]
    for seg in list(kernel.segment_table.segments_sorted()):
        kernel.segment_table.split(seg.seg_id, 10)
    tree = kernel.current_index_tree()
    cache = IndexCache(SegmentTranslationConfig(),
                       memory_charge=lambda pa: 0, size_bytes=8192)
    for workload in workloads:
        for record in workload.trace(FIG7_LOOKUPS):
            for node_pa in tree.lookup(record.asid, record.va).node_addresses:
                cache.read_node(node_pa)
    return cache.hit_rate()


def measure_synonym_filter() -> tuple:
    """Table II style: postgres through the hybrid MMU at the paper's
    Section III-C setup (8 MB shared LLC, area-equalized delayed TLB);
    returns ``(tlb_access_reduction_pct, false_positive_rate)``."""
    sharing = spec("postgres").sharing
    cores = sharing.processes if sharing else 1
    config = dataclasses.replace(
        SystemConfig().with_llc_size(8 * 1024 * 1024), cores=cores)
    config = config.with_delayed_tlb_entries(
        1024 * (1 << (cores - 1).bit_length()))
    kernel = Kernel(config)
    workload = lay_out("postgres", kernel)
    hybrid = HybridMmu(kernel, config, delayed="tlb")
    Simulator(hybrid).run(workload, accesses=TABLE2_ACCESSES,
                          warmup=TABLE2_WARMUP,
                          reset_stats_after_warmup=True)
    return 100.0 * hybrid.tlb_access_reduction(), hybrid.false_positive_rate()


def measure_eager_untouched() -> float:
    """Table III style: worst untouched fraction of eagerly-allocated
    memory across the paper's under-used applications (design values of
    the trace generators — the whole-run utilization Table III reports)."""
    return max(1.0 - spec(name).touch_fraction for name in TABLE3_WORKLOADS)


def measure_claims() -> dict:
    """The ``repro.fidelity/v1`` document this example contributes."""
    energy = measure_energy_reduction()
    virt = measure_virt_speedup()
    access_reduction, fp_rate = measure_synonym_filter()
    return fidelity_doc({
        "abstract.translation_power": energy,
        "fig11.energy_reduction": energy,
        "abstract.virt_speedup": virt,
        "fig10.virt_speedup": virt,
        "table1.postgres_shared_area": measure_postgres_sharing(),
        "fig7.index_cache_8k_hit": measure_index_cache_hit(),
        "table2.filter_access_reduction": access_reduction,
        "table2.false_positive_rate": fp_rate,
        "table3.eager_untouched": measure_eager_untouched(),
    }, note=f"measured live: virt at accesses={ACCESSES}/warmup={WARMUP}, "
            f"energy at {ENERGY_ACCESSES}/{ENERGY_WARMUP}, "
            f"filter at {TABLE2_ACCESSES}/{TABLE2_WARMUP}")


def main() -> None:
    bundle = ReportBundle()
    for path in sorted(DATA_DIR.glob("*.json")):
        if path.name == "fidelity_sample.json":
            continue  # superseded by the live measurement below
        with open(path, encoding="utf-8") as handle:
            bundle.add_doc(json.load(handle),
                           source=f"examples/data/{path.name}")
    print("measuring energy / virtualization / sharing claims...")
    bundle.add_doc(measure_claims(), source="fidelity_report.py (live)")

    rows = evaluate_scorecard(bundle)
    counts: dict = {}
    for row in rows:
        counts[row.badge] = counts.get(row.badge, 0) + 1
    print("fidelity scorecard: "
          + "  ".join(f"{kind}={counts.get(kind, 0)}"
                      for kind in ("pass", "warn", "fail", "no-data")))
    for row in rows:
        measured = ("—" if row.measured is None
                    else f"{row.measured:.4g} {row.claim.unit}")
        print(f"  [{row.badge:>7}] {row.claim.artifact:<9} "
              f"{row.claim.title[:58]:<58} paper="
              f"{row.claim.paper_value:g} reproduced={measured}")

    Path(OUT).write_text(build_report(bundle), encoding="utf-8")
    print(f"self-contained HTML report -> {OUT}")


if __name__ == "__main__":
    main()
