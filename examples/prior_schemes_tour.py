#!/usr/bin/env python
"""Tour of translation architectures, prior and proposed.

Runs two pivot workloads through six MMU designs:

* **GUPS** — one giant allocation.  Any range-based scheme (direct
  segment, RMM, many-segment) translates it perfectly; page-granularity
  schemes (conventional TLBs, Enigma-style delayed TLB) drown in misses.
* **memcached** — hundreds of scattered allocations.  Direct segment
  covers one of them, RMM's 32 ranges thrash, and only the 2048-entry
  delayed segment table keeps the range advantage.

This is the paper's scalability argument in one screen.
"""

from repro.sim import run_workload
from repro.sim.report import horizontal_bars

ACCESSES = 12_000
WARMUP = 15_000
CONFIGS = ("baseline", "direct_segment", "rmm", "enigma", "hybrid_tlb",
           "hybrid_segments")


def tour(workload_name: str) -> None:
    print(f"\n=== {workload_name} ===")
    results = {}
    for config in CONFIGS:
        results[config] = run_workload(workload_name, config,
                                       accesses=ACCESSES, warmup=WARMUP)
    base = results["baseline"].ipc
    normalized = {name: r.ipc / base for name, r in results.items()}
    print(horizontal_bars(normalized, reference=1.0))


def main() -> None:
    print("Speedup over the conventional physically addressed baseline")
    tour("gups")
    tour("memcached")
    print("\nTakeaway: ranges beat pages when they fit; only many-segment")
    print("delayed translation keeps ranges once allocations fragment.")


if __name__ == "__main__":
    main()
