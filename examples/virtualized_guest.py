#!/usr/bin/env python
"""Virtualized guest scenario (paper Section V).

A VM runs a memory-intensive guest under two translation architectures:

* the baseline: gVA→MA TLBs backed by hardware 2-D nested walks
  (accelerated by a nested TLB and a 2-D walk cache), and
* hybrid virtual caching: VMID-extended ASIDs, guest+host synonym
  filters, and the 2-D translation delayed until after the LLC with
  two-step segment translation and a gVA→MA segment cache.

Also demonstrates hypervisor-induced (content-based) sharing: two
guest-physical pages folded onto one machine frame, with the host filter
marking the affected guest-virtual pages when r/w synonym naming is
required.
"""

from repro.sim import Simulator, lay_out
from repro.virt import Hypervisor, VirtConventionalMmu, VirtHybridMmu

ACCESSES = 20_000
WARMUP = 6_000


def run_vm(mmu_kind: str, workload_name: str = "mcf"):
    hypervisor = Hypervisor()
    vm = hypervisor.create_vm("guest-vm")
    workload = lay_out(workload_name, vm.guest_kernel)
    if mmu_kind == "baseline":
        mmu = VirtConventionalMmu(hypervisor, vm)
    else:
        mmu = VirtHybridMmu(hypervisor, vm, delayed="segments")
    result = Simulator(mmu).run(workload, accesses=ACCESSES, warmup=WARMUP)
    return hypervisor, vm, mmu, result


def main() -> None:
    print("=== Virtualized guest: 2-D translation cost ===\n")

    _, _, _, base = run_vm("baseline")
    _, vm, hybrid_mmu, hybrid = run_vm("hybrid")
    print(f"baseline (2-D walks + nested TLB): IPC {base.ipc:.4f}")
    print(f"hybrid (delayed 2-D segments):     IPC {hybrid.ipc:.4f}")
    print(f"speedup: {hybrid.ipc / base.ipc:.2f}x")
    reads = base.counter("twod_walker", "memory_reads")
    walks = base.counter("twod_walker", "walks")
    if walks:
        print(f"baseline nested walks: {walks}, "
              f"avg PTE reads/walk {reads / walks:.1f} (worst case is 24)")

    # -- Hypervisor-induced content sharing ---------------------------- #
    print("\n-- content-based page sharing --")
    hypervisor = Hypervisor()
    vm = hypervisor.create_vm("guest-vm")
    guest = vm.guest_kernel
    p = guest.create_process("app")
    vma = guest.mmap(p, 1 << 20, policy="eager")
    gva_a, gva_b = vma.vbase, vma.vbase + 8 * 4096
    gpa_a = guest.translate(p.asid, gva_a).pa
    gpa_b = guest.translate(p.asid, gva_b).pa
    vm.record_gva(p.asid, gva_a, gpa_a)
    vm.record_gva(p.asid, gva_b, gpa_b)

    ma = hypervisor.share_content_pages([(vm, gpa_a), (vm, gpa_b)],
                                        readonly_virtual=False)
    print(f"gPA {gpa_a:#x} and {gpa_b:#x} now share machine page {ma:#x}")
    print(f"host filter flags gVA {gva_a:#x}: "
          f"{vm.host_filter.is_synonym_candidate(gva_a)}")
    print(f"host filter flags gVA {gva_b:#x}: "
          f"{vm.host_filter.is_synonym_candidate(gva_b)}")
    new_ma = hypervisor.unshare_on_write(vm, gpa_b)
    print(f"write to the shared page broke CoW -> private machine page "
          f"{new_ma:#x}")


if __name__ == "__main__":
    main()
