"""Figure 4 — normalized delayed-TLB MPKI vs. TLB size (1K–64K entries).

Paper setup (Section IV-A.1): translation requests filtered by a 2 MB
LLC; only LLC misses reach the delayed TLB.  The claim: for GUPS, mcf,
and milc the page working set dwarfs even a 32K-entry delayed TLB, so
growing it barely helps — fixed-granularity delayed translation does not
scale.  The other workloads (xalancbmk, tigr, omnetpp, soplex) have page
locality and their curves fall steeply.
"""

from __future__ import annotations

import pytest

from repro.common.params import SystemConfig
from repro.common.stats import mpki
from repro.exec import ExperimentPlan, Job
from repro.workloads import FIG4_WORKLOADS, spec

from conftest import emit, run_once

SIZES = (1024, 2048, 4096, 8192, 16384, 32768, 65536)
ACCESSES = 30_000
WARMUP = 30_000

SCALING_HOSTILE = ("gups", "milc", "mcf")
SCALING_FRIENDLY = ("xalancbmk", "tigr", "omnetpp", "soplex")


def build_plan():
    """One job per (workload, delayed-TLB size) grid point."""
    plan = ExperimentPlan()
    points = {}
    for name in FIG4_WORKLOADS:
        for entries in SIZES:
            job = Job(workload=name, mmu="hybrid_tlb",
                      config=SystemConfig().with_delayed_tlb_entries(entries),
                      accesses=ACCESSES, warmup=WARMUP,
                      reset_stats_after_warmup=True,
                      tags=(("delayed_tlb_entries", entries),))
            plan.add(job)
            points[(name, entries)] = job
    return plan, points


def measure_all(engine):
    plan, points = build_plan()
    results = engine.run(plan)
    curves = {}
    for name in FIG4_WORKLOADS:
        instructions = spec(name).instructions_for(ACCESSES)
        curves[name] = [
            mpki(results.result(points[(name, entries)])
                 .counter("delayed_tlb", "misses"), instructions)
            for entries in SIZES]
    return curves


@pytest.mark.benchmark(group="fig4")
def test_fig4_delayed_tlb_mpki(benchmark, report, engine):
    curves = run_once(benchmark, measure_all, engine)

    emit(report, "\nFigure 4 — delayed-TLB MPKI (absolute, then "
                 "normalized to the 1K-entry point)")
    header = "".join(f"{s // 1024}K".rjust(8) for s in SIZES)
    emit(report, f"{'workload':<12}{header}")
    normalized = {}
    for name, series in curves.items():
        emit(report, f"{name:<12}" + "".join(f"{v:8.2f}" for v in series))
        base = series[0] if series[0] else 1.0
        normalized[name] = [v / base for v in series]
    emit(report, f"{'(normalized)':<12}")
    for name, series in normalized.items():
        emit(report, f"{name:<12}" + "".join(f"{v:8.2f}" for v in series))

    for name, series in curves.items():
        # Larger delayed TLBs never hurt (monotone non-increasing within
        # simulation noise).
        for a, b in zip(series, series[1:]):
            assert b <= a * 1.10, f"{name}: non-monotone {series}"

    for name in SCALING_HOSTILE:
        series = normalized[name]
        # Even 32x more entries leaves most of the misses: the paper's
        # "significant TLB misses remain even with a 32K-entry TLB".
        assert series[5] > 0.55, f"{name} fell too fast: {series}"
        assert curves[name][5] > 5.0, f"{name} MPKI too low to matter"

    for name in SCALING_FRIENDLY:
        series = normalized[name]
        # Locality-bearing curves fall steeply with size.
        assert series[5] < 0.55, f"{name} should benefit: {series}"

    # The contrast itself: hostile curves stay far above friendly ones.
    worst_friendly = max(normalized[n][5] for n in SCALING_FRIENDLY)
    best_hostile = min(normalized[n][5] for n in SCALING_HOSTILE)
    assert best_hostile > worst_friendly
