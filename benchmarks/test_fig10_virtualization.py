"""Figure 10* — virtualized performance (Section V / headline +31.7 %).

(*The provided paper text truncates before the virtualization results
figure; the abstract gives the headline: +31.7 % for memory-intensive
workloads vs. a system with a state-of-the-art 2-D translation cache.)

Configurations:

* ``virt_baseline``   — gVA→MA TLBs + nested walks accelerated by a
  nested TLB and a 2-D page-walk cache (the translation-cache baseline);
* ``virt_hybrid_tlb`` — hybrid virtual caching with a delayed gVA→MA TLB;
* ``virt_hybrid_seg`` — hybrid with two-step (guest segment × host
  segment) delayed translation and a gVA→MA segment cache.
"""

from __future__ import annotations

import pytest

from repro.sim import Simulator, geometric_mean, lay_out
from repro.sim.results import SimulationResult
from repro.virt import Hypervisor, VirtConventionalMmu, VirtHybridMmu

from conftest import emit, run_once

ACCESSES = 15_000
WARMUP = 20_000
WORKLOADS = ("gups", "mcf", "milc", "xalancbmk", "omnetpp")
CONFIGS = ("virt_baseline", "virt_hybrid_tlb", "virt_hybrid_seg")


def run_config(config_name: str, workload_name: str) -> SimulationResult:
    hypervisor = Hypervisor()
    vm = hypervisor.create_vm(f"vm-{workload_name}")
    workload = lay_out(workload_name, vm.guest_kernel)
    if config_name == "virt_baseline":
        mmu = VirtConventionalMmu(hypervisor, vm)
    elif config_name == "virt_hybrid_tlb":
        mmu = VirtHybridMmu(hypervisor, vm, delayed="tlb")
    else:
        mmu = VirtHybridMmu(hypervisor, vm, delayed="segments")
    return Simulator(mmu).run(workload, accesses=ACCESSES, warmup=WARMUP)


def measure(workload_name: str):
    results = {c: run_config(c, workload_name) for c in CONFIGS}
    base = results["virt_baseline"].ipc
    row = {c: r.ipc / base for c, r in results.items()}
    walker = results["virt_baseline"].group("twod_walker")
    walks = walker.get("walks", 0)
    row["base_walk_reads"] = (walker.get("memory_reads", 0) / walks
                              if walks else 0.0)
    return row


def measure_all():
    return {name: measure(name) for name in WORKLOADS}


@pytest.mark.benchmark(group="fig10")
def test_fig10_virtualization(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nFigure 10* — virtualized performance normalized to the "
                 "2-D translation-cache baseline")
    emit(report, f"{'workload':<12}" + "".join(c.rjust(18) for c in CONFIGS)
                 + "avg walk reads".rjust(16))
    for name, row in rows.items():
        emit(report, f"{name:<12}"
                     + "".join(f"{row[c]:18.3f}" for c in CONFIGS)
                     + f"{row['base_walk_reads']:16.1f}")
    geo = {c: geometric_mean([rows[n][c] for n in WORKLOADS])
           for c in CONFIGS}
    emit(report, f"{'geomean':<12}"
                 + "".join(f"{geo[c]:18.3f}" for c in CONFIGS))

    # Headline shape: delayed 2-D translation is a much bigger win than
    # in native mode (paper: +31.7 % vs. +10.7 %).
    assert geo["virt_hybrid_seg"] > 1.25
    # Segment-based two-step translation beats the delayed 2-D TLB
    # (which still pays nested walks on its misses).
    assert geo["virt_hybrid_seg"] >= geo["virt_hybrid_tlb"] - 0.01
    # Every memory-intensive workload individually benefits.
    for name in WORKLOADS:
        assert rows[name]["virt_hybrid_seg"] > 1.0, name
    # The baseline really is paying multi-read nested walks (worst case
    # 24; translation caches keep the average well below that).
    for name in WORKLOADS:
        assert 1.0 < rows[name]["base_walk_reads"] <= 24.0, name
