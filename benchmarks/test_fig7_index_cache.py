"""Figure 7 — index-cache size sensitivity.

(a) Real workloads (single-threaded, and 4-way multi-programmed mixes),
    with every segment artificially split ~10 ways to inject external
    fragmentation, driving the index-tree walker through index caches of
    128 B – 64 KB.  Paper: locality makes even a modest 8 KB index cache
    essentially miss-free.

(b) Synthetic worst case: 1024 / 2048 equal segments spanning a 40-bit
    physical space, one million uniformly random lookups.  Paper: 32 KB
    nearly eliminates misses for 1024 segments but reaches only ~75 %
    hit rate for 2048 (the tree no longer fits).
"""

from __future__ import annotations

import pytest

from repro.common.params import SegmentTranslationConfig, SystemConfig
from repro.common.rng import make_rng
from repro.osmodel import FrameAllocator, IndexTree, Kernel, OsSegmentTable
from repro.segtrans import IndexCache
from repro.sim import lay_out
from repro.workloads import spec

from conftest import emit, run_once

SIZES = (128, 256, 512, 1024, 2048, 8192, 16384, 32768, 65536)
REAL_LOOKUPS = 20_000
WORST_LOOKUPS = 100_000
SINGLE_WORKLOADS = ("xalancbmk", "tigr", "memcached", "omnetpp")
# Quad-core mixes of the highest-miss workloads (the paper averages 210
# such mixes; a handful reproduces the single-vs-multi gap).
MIXES = (
    ("xalancbmk", "tigr", "memcached", "mcf"),
    ("memcached", "omnetpp", "xalancbmk", "canneal"),
    ("tigr", "mummer", "memcached", "astar"),
    ("xalancbmk", "canneal", "mcf", "tigr"),
)


def _drive(tree: IndexTree, table, queries, cache_size: int) -> float:
    """Walk the tree through one index cache; returns the hit rate."""
    cache = IndexCache(SegmentTranslationConfig(), memory_charge=lambda pa: 0,
                       size_bytes=cache_size)
    for asid, va in queries:
        lookup = tree.lookup(asid, va)
        for node_pa in lookup.node_addresses:
            cache.read_node(node_pa)
    return cache.hit_rate()


def _fragmented_system(names):
    """Lay out workloads with eager segments, then split each ~10 ways.

    The split injects external fragmentation as in the paper's study;
    the OS table is enlarged for the stress test (the study measures the
    index cache, not the 2048-entry budget).
    """
    kernel = Kernel(SystemConfig(), segment_table_capacity=16384)
    workloads = [lay_out(name, kernel, seed=11 + i)
                 for i, name in enumerate(names)]
    for seg in list(kernel.segment_table.segments_sorted()):
        kernel.segment_table.split(seg.seg_id, 10)
    tree = kernel.current_index_tree()
    queries = []
    traces = [w.trace(REAL_LOOKUPS // len(workloads)) for w in workloads]
    for trace in traces:
        for record in trace:
            queries.append((record.asid, record.va))
    return kernel, tree, queries


def measure_real(names):
    kernel, tree, queries = _fragmented_system(names)
    return [
        _drive(tree, kernel.segment_table, queries, size) for size in SIZES
    ]


def measure_worst(n_segments: int):
    frames = FrameAllocator(8 * 1024 ** 3)
    table = OsSegmentTable(capacity=4096)
    span = (1 << 40) // n_segments
    va = 0x1000_0000
    for i in range(n_segments):
        table.insert(1, va, span, i * span)
        va += span + 4096
    tree = IndexTree(frames)
    tree.build(table)
    rng = make_rng(99)
    total_va = n_segments * (span + 4096)
    queries = [(1, 0x1000_0000 + rng.randrange(0, total_va - 8192))
               for _ in range(WORST_LOOKUPS)]
    # Confine queries to mapped ranges (gaps are guard pages).
    return [_drive(tree, table, queries, size) for size in SIZES]


def measure_all():
    single_curves = [measure_real((name,)) for name in SINGLE_WORKLOADS[:2]]
    multi_curves = [measure_real(mix) for mix in MIXES]

    def average(curves):
        return [sum(c[i] for c in curves) / len(curves)
                for i in range(len(SIZES))]

    return {
        "single": single_curves[0],
        "single_avg": average(single_curves),
        "multi_avg": average(multi_curves),
        "worst_1024": measure_worst(1024),
        "worst_2048": measure_worst(2048),
    }


@pytest.mark.benchmark(group="fig7")
def test_fig7_index_cache(benchmark, report):
    curves = run_once(benchmark, measure_all)

    emit(report, "\nFigure 7 — index-cache hit rates vs. size")
    header = "".join(
        (f"{s // 1024}K" if s >= 1024 else f"{s}B").rjust(8) for s in SIZES)
    emit(report, f"{'series':<12}{header}")
    for series_name, series in curves.items():
        emit(report, f"{series_name:<12}"
                     + "".join(f"{100 * v:7.1f}%" for v in series))

    for series in curves.values():
        # Hit rate grows (weakly) with cache size.
        for a, b in zip(series, series[1:]):
            assert b >= a - 0.02, series

    # (a) Real workloads: modest caches suffice (paper: ~8 KB).
    idx_8k = SIZES.index(8192)
    assert curves["single"][idx_8k] > 0.90
    assert curves["single_avg"][idx_8k] > 0.90
    assert curves["multi_avg"][idx_8k] > 0.85
    # Multi-programming costs some conflict misses vs. single (the
    # paper's darker-vs-lighter curve gap).
    idx_16k = SIZES.index(16384)
    assert (curves["multi_avg"][idx_16k]
            <= curves["single_avg"][idx_16k] + 0.02)

    # (b) Worst case at 32 KB: 1024 segments nearly perfect, 2048 well
    # short of it (the paper's 75.5 %).
    # (Our bulk-loaded tree keeps hot upper levels resident, so the
    # 2048-segment deficit is milder than the paper's 75.5 % but the
    # 1024-fits / 2048-overflows contrast is preserved.)
    idx_32k = SIZES.index(32768)
    assert curves["worst_1024"][idx_32k] > 0.99
    assert curves["worst_2048"][idx_32k] < 0.97
    assert (curves["worst_1024"][idx_32k]
            > curves["worst_2048"][idx_32k] + 0.02)
    # And tiny caches are hopeless in the worst case.
    assert curves["worst_2048"][0] < 0.45
