"""Prior-scheme comparison (extension study).

Pits the paper's hybrid many-segment design against the prior approaches
it builds on (Section II / IV-A):

* direct segment (one range + paging) — great when one segment covers
  the heap, helpless beyond it;
* RMM (32 core-side ranges) — great until the live-range count passes
  32, then the range TLB thrashes (Table III);
* Enigma-style intermediate addressing — removes per-access TLB probes
  like the hybrid design, but its page-granularity delayed translation
  hits the Figure 4 wall;
* transparent 2 MB huge pages (extension) — the modern commodity
  answer: 512× reach per entry, but still one probe per access and
  still granularity-bound;
* hybrid + many segments — matches the range schemes where they shine
  and keeps scaling where they break.

Two pivot workloads: GUPS (1 segment; every range scheme covers it) and
memcached (512 scattered segments; only the 2048-entry delayed segment
table covers them all).
"""

from __future__ import annotations

import pytest

from repro.sim import run_workload

from conftest import emit, run_once

ACCESSES = 15_000
WARMUP = 25_000
CONFIGS = ("baseline", "baseline_thp", "direct_segment", "rmm", "enigma",
           "hybrid_tlb", "hybrid_segments")
WORKLOADS = ("gups", "memcached", "xalancbmk")


def measure(workload_name: str):
    results = {c: run_workload(workload_name, c, accesses=ACCESSES,
                               warmup=WARMUP) for c in CONFIGS}
    base = results["baseline"].ipc
    return {c: r.ipc / base for c, r in results.items()}


def measure_all():
    return {name: measure(name) for name in WORKLOADS}


@pytest.mark.benchmark(group="prior")
def test_prior_schemes(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nPrior schemes vs. hybrid many-segment "
                 "(speedup over the conventional baseline)")
    emit(report, f"{'workload':<12}" + "".join(c.rjust(16) for c in CONFIGS))
    for name, row in rows.items():
        emit(report, f"{name:<12}"
                     + "".join(f"{row[c]:16.3f}" for c in CONFIGS))

    gups = rows["gups"]
    memcached = rows["memcached"]
    xalancbmk = rows["xalancbmk"]

    # On the one-segment workload every range scheme wins big, and the
    # hybrid many-segment design keeps pace with them.
    assert gups["direct_segment"] > 1.3
    assert gups["rmm"] > 1.3
    # THP also rescues GUPS (128 huge pages fit the huge TLB)...
    assert gups["baseline_thp"] > 1.3
    # ...but on fragmented many-segment workloads it cannot recover the
    # hybrid design's advantage.
    assert (memcached["hybrid_segments"]
            >= memcached["baseline_thp"] - 0.05)
    assert gups["hybrid_segments"] > 0.85 * gups["direct_segment"]
    # Page-granularity delayed translation (Enigma / hybrid+TLB) trails
    # the segment schemes on GUPS — the Figure 4 wall.
    assert gups["hybrid_segments"] > gups["enigma"]
    assert gups["hybrid_segments"] > gups["hybrid_tlb"]

    # On the many-segment workloads RMM loses its edge (range thrash),
    # while the 2048-entry delayed segment table still covers everything.
    for row in (memcached, xalancbmk):
        assert row["hybrid_segments"] >= row["rmm"] - 0.03
    # Direct segment covers only one of memcached's 512 segments.
    assert memcached["hybrid_segments"] >= memcached["direct_segment"] - 0.03
