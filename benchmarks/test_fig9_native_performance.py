"""Figure 9 — native performance, normalized to the physical baseline.

Configurations, as in the paper's Section VI-B: the baseline two-level
TLB system; hybrid virtual caching with fixed-granularity delayed TLBs
(1K and 32K entries here, spanning the paper's 1K–32K sweep); delayed
many-segment translation without and with the 128-entry segment cache;
and the ideal no-TLB-miss upper bound.

Headline to reproduce in shape: memory-intensive workloads gain ~10 %
with scalable delayed translation (paper: 10.7 % average), many-segment
+SC tracks the ideal TLB closely, and fixed delayed TLBs trail on the
workloads whose page working sets outgrow them.
"""

from __future__ import annotations

import pytest

from repro.common.params import SystemConfig
from repro.exec import ExperimentPlan, Job
from repro.sim import geometric_mean
from repro.workloads import MEMORY_INTENSIVE

from conftest import emit, run_once

ACCESSES = 25_000
WARMUP = 40_000

CONFIGS = ("baseline", "delayed_tlb_1k", "delayed_tlb_32k",
           "many_seg_nosc", "many_seg_sc", "ideal")

WORKLOADS = tuple(MEMORY_INTENSIVE) + ("omnetpp", "soplex", "astar",
                                       "stream", "gemsfdtd")


def job_for(workload_name: str, config_name: str) -> Job:
    """Translate one figure column into an engine job."""
    system = SystemConfig()
    mmu_name, config = {
        "delayed_tlb_1k": ("hybrid_tlb",
                           system.with_delayed_tlb_entries(1024)),
        "delayed_tlb_32k": ("hybrid_tlb",
                            system.with_delayed_tlb_entries(32768)),
        "many_seg_nosc": ("hybrid_segments_nosc", system),
        "many_seg_sc": ("hybrid_segments", system),
    }.get(config_name, (config_name, system))
    return Job(workload=workload_name, mmu=mmu_name, config=config,
               accesses=ACCESSES, warmup=WARMUP,
               tags=(("column", config_name),))


def measure_all(engine):
    plan = ExperimentPlan()
    points = {(name, config_name): job_for(name, config_name)
              for name in WORKLOADS for config_name in CONFIGS}
    plan.extend(points.values())
    results = engine.run(plan)
    rows = {}
    for name in WORKLOADS:
        ipcs = {config_name: results.result(points[(name, config_name)]).ipc
                for config_name in CONFIGS}
        base = ipcs["baseline"]
        rows[name] = {c: ipc / base for c, ipc in ipcs.items()}
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_native_performance(benchmark, report, engine):
    rows = run_once(benchmark, measure_all, engine)

    emit(report, "\nFigure 9 — performance normalized to baseline")
    header = "".join(c.rjust(16) for c in CONFIGS)
    emit(report, f"{'workload':<12}{header}")
    for name, row in rows.items():
        emit(report, f"{name:<12}"
                     + "".join(f"{row[c]:16.3f}" for c in CONFIGS))

    mem_rows = [rows[n] for n in MEMORY_INTENSIVE]
    geo = {c: geometric_mean([r[c] for r in mem_rows]) for c in CONFIGS}
    emit(report, f"{'geomean(MI)':<12}"
                 + "".join(f"{geo[c]:16.3f}" for c in CONFIGS))

    # Headline: scalable delayed translation gains ~10 % on the
    # memory-intensive group (paper: 10.7 %).
    assert geo["many_seg_sc"] > 1.05
    # Ideal bounds everything from above (within simulation noise).
    for c in CONFIGS:
        assert geo[c] <= geo["ideal"] + 0.02, c
    # Many-segment + SC tracks the ideal TLB closely...
    assert geo["many_seg_sc"] > 0.93 * geo["ideal"]
    # ...and beats both fixed-granularity delayed TLB sizes on average.
    assert geo["many_seg_sc"] >= geo["delayed_tlb_32k"] - 0.01
    assert geo["many_seg_sc"] > geo["delayed_tlb_1k"]
    # The segment cache earns its 128 entries.
    assert geo["many_seg_sc"] >= geo["many_seg_nosc"] - 0.005
    # Bigger delayed TLBs help on average.
    assert geo["delayed_tlb_32k"] >= geo["delayed_tlb_1k"] - 0.005

    # Per-workload: GUPS (the translation-bound extreme) must show the
    # largest many-segment gain in the suite.
    gups_gain = rows["gups"]["many_seg_sc"]
    assert gups_gain > 1.15
    assert gups_gain == max(r["many_seg_sc"] for r in rows.values())

    # Cache-friendly workloads neither gain much nor regress badly.
    for name in ("omnetpp", "astar", "stream", "gemsfdtd"):
        assert rows[name]["many_seg_sc"] > 0.93, name
