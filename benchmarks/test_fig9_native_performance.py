"""Figure 9 — native performance, normalized to the physical baseline.

Configurations, as in the paper's Section VI-B: the baseline two-level
TLB system; hybrid virtual caching with fixed-granularity delayed TLBs
(1K and 32K entries here, spanning the paper's 1K–32K sweep); delayed
many-segment translation without and with the 128-entry segment cache;
and the ideal no-TLB-miss upper bound.

Headline to reproduce in shape: memory-intensive workloads gain ~10 %
with scalable delayed translation (paper: 10.7 % average), many-segment
+SC tracks the ideal TLB closely, and fixed delayed TLBs trail on the
workloads whose page working sets outgrow them.
"""

from __future__ import annotations

import pytest

from repro.common.params import SystemConfig
from repro.sim import Simulator, build_mmu, geometric_mean, lay_out
from repro.osmodel import Kernel
from repro.workloads import CACHE_FRIENDLY, MEMORY_INTENSIVE

from conftest import emit, run_once

ACCESSES = 25_000
WARMUP = 40_000

CONFIGS = ("baseline", "delayed_tlb_1k", "delayed_tlb_32k",
           "many_seg_nosc", "many_seg_sc", "ideal")

WORKLOADS = tuple(MEMORY_INTENSIVE) + ("omnetpp", "soplex", "astar",
                                       "stream", "gemsfdtd")


def build(config_name: str, kernel: Kernel, system: SystemConfig):
    if config_name == "delayed_tlb_1k":
        return build_mmu("hybrid_tlb", kernel,
                         system.with_delayed_tlb_entries(1024))
    if config_name == "delayed_tlb_32k":
        return build_mmu("hybrid_tlb", kernel,
                         system.with_delayed_tlb_entries(32768))
    if config_name == "many_seg_nosc":
        return build_mmu("hybrid_segments_nosc", kernel, system)
    if config_name == "many_seg_sc":
        return build_mmu("hybrid_segments", kernel, system)
    return build_mmu(config_name, kernel, system)


def measure(workload_name: str):
    system = SystemConfig()
    ipcs = {}
    for config_name in CONFIGS:
        kernel = Kernel(system)
        workload = lay_out(workload_name, kernel)
        mmu = build(config_name, kernel, system)
        result = Simulator(mmu).run(workload, accesses=ACCESSES,
                                    warmup=WARMUP)
        ipcs[config_name] = result.ipc
    base = ipcs["baseline"]
    return {name: ipc / base for name, ipc in ipcs.items()}


def measure_all():
    return {name: measure(name) for name in WORKLOADS}


@pytest.mark.benchmark(group="fig9")
def test_fig9_native_performance(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nFigure 9 — performance normalized to baseline")
    header = "".join(c.rjust(16) for c in CONFIGS)
    emit(report, f"{'workload':<12}{header}")
    for name, row in rows.items():
        emit(report, f"{name:<12}"
                     + "".join(f"{row[c]:16.3f}" for c in CONFIGS))

    mem_rows = [rows[n] for n in MEMORY_INTENSIVE]
    geo = {c: geometric_mean([r[c] for r in mem_rows]) for c in CONFIGS}
    emit(report, f"{'geomean(MI)':<12}"
                 + "".join(f"{geo[c]:16.3f}" for c in CONFIGS))

    # Headline: scalable delayed translation gains ~10 % on the
    # memory-intensive group (paper: 10.7 %).
    assert geo["many_seg_sc"] > 1.05
    # Ideal bounds everything from above (within simulation noise).
    for c in CONFIGS:
        assert geo[c] <= geo["ideal"] + 0.02, c
    # Many-segment + SC tracks the ideal TLB closely...
    assert geo["many_seg_sc"] > 0.93 * geo["ideal"]
    # ...and beats both fixed-granularity delayed TLB sizes on average.
    assert geo["many_seg_sc"] >= geo["delayed_tlb_32k"] - 0.01
    assert geo["many_seg_sc"] > geo["delayed_tlb_1k"]
    # The segment cache earns its 128 entries.
    assert geo["many_seg_sc"] >= geo["many_seg_nosc"] - 0.005
    # Bigger delayed TLBs help on average.
    assert geo["delayed_tlb_32k"] >= geo["delayed_tlb_1k"] - 0.005

    # Per-workload: GUPS (the translation-bound extreme) must show the
    # largest many-segment gain in the suite.
    gups_gain = rows["gups"]["many_seg_sc"]
    assert gups_gain > 1.15
    assert gups_gain == max(r["many_seg_sc"] for r in rows.values())

    # Cache-friendly workloads neither gain much nor regress badly.
    for name in ("omnetpp", "astar", "stream", "gemsfdtd"):
        assert rows[name]["many_seg_sc"] > 0.93, name
