"""Figure 11* — translation-component dynamic energy (headline −60 %).

(*The provided text truncates before the energy figure; the abstract
gives the headline: "the power consumption of the translation
components is reduced by 60%".)

Counts every translation-structure event over a steady-state window —
I-side and D-side TLB/filter probes, L2 TLB probes, page-walk PTE
fetches, and the hybrid's delayed structures — times CACTI-class
per-access energies, plus the extended-tag overhead the hybrid pays on
every cache access (paper Section III-A: ≤0.32 %).
"""

from __future__ import annotations

import pytest

from repro.energy import EnergyModel
from repro.sim import run_workload
from repro.workloads import spec

from conftest import emit, run_once

ACCESSES = 25_000
WARMUP = 50_000
WORKLOADS = ("omnetpp", "astar", "soplex", "stream", "xalancbmk", "mcf",
             "gemsfdtd", "cactus")


def measure(name: str):
    energy = EnergyModel()
    base = run_workload(name, "baseline", accesses=ACCESSES, warmup=WARMUP)
    hybrid = run_workload(name, "hybrid_tlb", accesses=ACCESSES,
                          warmup=WARMUP)
    fetches = spec(name).instructions_for(ACCESSES + WARMUP)
    b = energy.baseline_translation_energy(base.stats,
                                           instruction_fetches=fetches)
    h = energy.hybrid_translation_energy(hybrid.stats,
                                         instruction_fetches=fetches)
    tag_extra = energy.tag_extension_energy(hybrid.stats)
    return {
        "baseline_pj": energy.total(b),
        "hybrid_pj": energy.total(h) + tag_extra,
        "reduction": energy.reduction(b, h, proposed_extra=tag_extra),
        "tag_overhead": tag_extra / energy.total(h) if energy.total(h) else 0.0,
        "baseline_breakdown": b,
        "hybrid_breakdown": h,
    }


def measure_all():
    return {name: measure(name) for name in WORKLOADS}


@pytest.mark.benchmark(group="fig11")
def test_fig11_energy(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nFigure 11* — translation energy (paper headline: -60 %)")
    emit(report, f"{'workload':<12}{'baseline uJ':>13}{'hybrid uJ':>12}"
                 f"{'reduction':>12}")
    for name, row in rows.items():
        emit(report, f"{name:<12}{row['baseline_pj'] / 1e6:>13.2f}"
                     f"{row['hybrid_pj'] / 1e6:>12.2f}"
                     f"{100 * row['reduction']:>11.1f}%")
    average = sum(r["reduction"] for r in rows.values()) / len(rows)
    emit(report, f"{'average':<12}{'':>13}{'':>12}{100 * average:>11.1f}%")

    # Substantial average reduction.  Our synthetic traces are far more
    # LLC-hostile than the paper's full applications, so the delayed
    # structures fire more often; the reproduced band is ~30-70 % rather
    # than a point at 60 %, with the most LLC-hostile subject (mcf at a
    # 224 MB footprint) at the bottom of it.
    assert average > 0.30
    for name, row in rows.items():
        assert row["reduction"] > 0.08, (name, row["reduction"])
        # Hybrid must never use more translation energy than baseline.
        assert row["hybrid_pj"] < row["baseline_pj"], name

    # The dominant baseline component is per-probe TLB energy — exactly
    # what the filter bypass eliminates.
    sample = rows["omnetpp"]["baseline_breakdown"]
    probe_energy = sample["l1_tlb"] + sample["itlb"]
    assert probe_energy > 0.5 * sum(sample.values())

    # Extended-tag overhead stays a small fraction of translation energy
    # (and a ~0.3 % fraction of cache energy by construction).
    for name, row in rows.items():
        assert row["tag_overhead"] < 0.25, name
