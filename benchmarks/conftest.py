"""Shared helpers for the experiment-regeneration benchmarks.

Each benchmark module regenerates one table or figure of the paper.  The
modules print the regenerated rows/series (run pytest with ``-s`` to see
them) and assert the paper's qualitative shape.  The ``benchmark``
fixture wraps each experiment once (``pedantic`` with one round) so the
wall-clock cost of regenerating every artifact is itself recorded.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


@pytest.fixture(scope="session")
def report():
    """Collect printed artifacts so they survive output capture.

    Everything emitted is also written to ``benchmarks/results/latest.txt``
    at session end, so a plain ``pytest benchmarks/ --benchmark-only`` run
    leaves the regenerated tables/figures on disk even without ``-s``.
    """
    import pathlib

    lines: list[str] = []
    yield lines
    if lines:
        print("\n".join(lines))
        results_dir = pathlib.Path(__file__).parent / "results"
        results_dir.mkdir(exist_ok=True)
        (results_dir / "latest.txt").write_text("\n".join(lines) + "\n")


def emit(report, text: str) -> None:
    """Print now (visible with -s) and store for the session summary."""
    print(text)
    report.append(text)
