"""Shared helpers for the experiment-regeneration benchmarks.

Each benchmark module regenerates one table or figure of the paper.  The
modules print the regenerated rows/series (run pytest with ``-s`` to see
them) and assert the paper's qualitative shape.  The ``benchmark``
fixture wraps each experiment once (``pedantic`` with one round) so the
wall-clock cost of regenerating every artifact is itself recorded.

Simulation-driven modules build :class:`repro.exec.ExperimentPlan`s and
run them through the session ``engine`` fixture, so one environment
switch parallelizes or caches every figure regeneration:

* ``REPRO_BENCH_WORKERS=N`` — fan each plan's independent points across
  ``N`` processes (results stay bit-identical to serial);
* ``REPRO_BENCH_CACHE=DIR`` — reuse fingerprint-keyed results between
  benchmark sessions; only changed points are re-simulated.
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.bench import make_baseline, save_baseline
from repro.exec import ParallelExecutor, ResultCache, SerialExecutor

#: Wall-clock of every experiment wrapped by :func:`run_once` this
#: session, in execution order — the raw material of ``latest.json``.
_TIMINGS: list[dict] = []


class Engine:
    """The executor + cache every benchmark plan runs through."""

    def __init__(self) -> None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
        self.executor = (ParallelExecutor(workers=workers) if workers > 1
                         else SerialExecutor())
        cache_dir = os.environ.get("REPRO_BENCH_CACHE")
        self.cache = ResultCache(cache_dir) if cache_dir else None

    def run(self, plan):
        return plan.run(executor=self.executor, cache=self.cache)


@pytest.fixture(scope="session")
def engine():
    return Engine()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    start = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                iterations=1)
    _TIMINGS.append({
        "name": getattr(benchmark, "name", None) or fn.__name__,
        "seconds": time.perf_counter() - start,
    })
    return result


@pytest.fixture(scope="session")
def report():
    """Collect printed artifacts so they survive output capture.

    Everything emitted is written to ``benchmarks/results/latest.txt`` at
    session end, and a machine-readable ``latest.json`` — per-benchmark
    wall-clock plus the artifact lines — lands alongside it so the perf
    trajectory can be diffed across PRs without parsing ASCII tables.
    """
    lines: list[str] = []
    yield lines
    results_dir = pathlib.Path(__file__).parent / "results"
    if lines:
        print("\n".join(lines))
        results_dir.mkdir(exist_ok=True)
        (results_dir / "latest.txt").write_text("\n".join(lines) + "\n")
    if lines or _TIMINGS:
        results_dir.mkdir(exist_ok=True)
        doc = make_baseline(_TIMINGS, artifact_lines=lines)
        save_baseline(doc, results_dir / "latest.json")
        # The human-facing twin: the same document folded into the
        # self-contained HTML report (scorecard + baseline section).
        from repro.report import ReportBundle, build_report

        bundle = ReportBundle()
        bundle.add_doc(doc, source="benchmarks/results/latest.json")
        (results_dir / "latest.html").write_text(
            build_report(bundle, title="Benchmark session report"),
            encoding="utf-8")


def emit(report, text: str) -> None:
    """Print now (visible with -s) and store for the session summary."""
    print(text)
    report.append(text)
