"""Ablations of the paper's design choices.

Three studies backing specific decisions in the paper:

1. **Dual-granularity synonym filter** (Section III-B, Figure 3): the
   AND of a 16 MB-grain and a 32 KB-grain filter yields far fewer false
   positives than either filter alone under sharing-heavy stress.
2. **Segment cache size** (Section IV-C): the 128-entry SC captures most
   of the delayed-translation latency win; far smaller SCs leave cycles
   on the table, far bigger ones add little (diminishing returns).
3. **Eager vs. reservation-based allocation** (Section IV-B): eager
   allocation minimizes segments but wastes untouched memory;
   reservation-based allocation recovers the waste at the cost of more
   segments — the paper's stated trade-off.
"""

from __future__ import annotations

import pytest

from repro.common.address import PAGE_SIZE
from repro.common.params import SegmentTranslationConfig, SystemConfig
from repro.common.rng import make_rng
from repro.core import HybridMmu
from repro.filters import SynonymFilter
from repro.osmodel import FrameAllocator, Kernel, OsSegmentTable, SegmentAllocator
from repro.sim import Simulator, lay_out

from conftest import emit, run_once

MB = 1024 * 1024


# ---------------------------------------------------------------------- #
# 1. Filter granularity
# ---------------------------------------------------------------------- #

def measure_filter_ablation():
    """False-positive rates: fine-only vs. coarse-only vs. dual (AND)."""
    rng = make_rng(7)
    filt = SynonymFilter()
    # Stress: 300 shared pages scattered over a wide mmap area (content
    # sharing spread across many 16 MB regions defeats the coarse filter
    # alone; many 32 KB regions load the fine filter).
    for _ in range(300):
        filt.mark_shared(0x7F00_0000_0000 + rng.randrange(0, 1 << 38) & ~0xFFF)
    probes = [0x1000_0000 + rng.randrange(0, 1 << 33) & ~0x7
              for _ in range(20_000)]
    fine_fp = sum(filt.fine.query(va) for va in probes) / len(probes)
    coarse_fp = sum(filt.coarse.query(va) for va in probes) / len(probes)
    dual_fp = sum(filt.is_synonym_candidate(va) for va in probes) / len(probes)
    return {"fine_only": fine_fp, "coarse_only": coarse_fp, "dual": dual_fp}


# ---------------------------------------------------------------------- #
# 2. Segment cache size
# ---------------------------------------------------------------------- #

def measure_sc_sweep():
    """Average delayed-translation cycles vs. SC capacity on GUPS."""
    import dataclasses

    results = {}
    for entries in (0, 16, 128, 1024):
        system = SystemConfig()
        if entries:
            system = dataclasses.replace(
                system,
                segments=dataclasses.replace(system.segments,
                                             segment_cache_entries=entries))
        kernel = Kernel(system)
        workload = lay_out("gups", kernel)
        mmu = HybridMmu(kernel, system, delayed="segments",
                        use_segment_cache=bool(entries))
        Simulator(mmu).run(workload, accesses=15_000, warmup=10_000,
                           reset_stats_after_warmup=True)
        translator = mmu.delayed.translator
        translations = translator.stats["translations"]
        sc_hits = translator.stats["sc_hits"]
        results[entries] = {
            "sc_hit_rate": sc_hits / translations if translations else 0.0,
            "full_walks": translator.stats["full_walks"],
        }
    return results


# ---------------------------------------------------------------------- #
# 3. Eager vs. reservation-based allocation
# ---------------------------------------------------------------------- #

def measure_allocation_policies():
    """memcached-style sparse usage under both allocation policies."""
    rng = make_rng(3)
    request = 64 * MB
    chunk = SegmentAllocator.RESERVATION_CHUNK
    # Sparse touch pattern: ~40 % of 2 MB chunks ever used.
    touched_chunks = sorted(rng.sample(range(request // chunk),
                                       k=int(0.4 * request // chunk)))

    def eager():
        frames = FrameAllocator(256 * MB)
        table = OsSegmentTable()
        alloc = SegmentAllocator(1, table, frames)
        segments = alloc.allocate(request)
        for chunk_index in touched_chunks:
            va = segments[0].vbase + chunk_index * chunk
            table.find(1, va).touch(va)
            # Touch one page per 2 MB chunk is enough for page counting;
            # touch them all for honest utilization numbers.
            for page in range(0, chunk, PAGE_SIZE):
                table.find(1, va + page).touch(va + page)
        return table.live_count(), table.utilization()

    def reservation():
        frames = FrameAllocator(256 * MB)
        table = OsSegmentTable()
        alloc = SegmentAllocator(1, table, frames)
        vbase, _length = alloc.reserve(request)
        for chunk_index in touched_chunks:
            base = vbase + chunk_index * chunk
            for page in range(0, chunk, PAGE_SIZE):
                seg = alloc.touch_reserved(base + page)
                seg.touch(base + page)
        return table.live_count(), table.utilization()

    eager_segments, eager_usage = eager()
    reserved_segments, reserved_usage = reservation()
    return {
        "eager": {"segments": eager_segments, "usage": eager_usage},
        "reservation": {"segments": reserved_segments,
                        "usage": reserved_usage},
    }


@pytest.mark.benchmark(group="ablations")
def test_filter_granularity_ablation(benchmark, report):
    rates = run_once(benchmark, measure_filter_ablation)
    emit(report, "\nAblation 1 — synonym-filter false positives under stress")
    for label, rate in rates.items():
        emit(report, f"  {label:<12} {100 * rate:6.2f}%")
    # The AND of the two granularities beats either filter alone.
    assert rates["dual"] <= rates["fine_only"]
    assert rates["dual"] <= rates["coarse_only"]
    assert rates["dual"] < 0.05


@pytest.mark.benchmark(group="ablations")
def test_segment_cache_size_ablation(benchmark, report):
    sweep = run_once(benchmark, measure_sc_sweep)
    emit(report, "\nAblation 2 — segment-cache capacity (GUPS)")
    for entries, row in sweep.items():
        emit(report, f"  SC={entries:<5} hit={100 * row['sc_hit_rate']:5.1f}% "
                     f"full walks={row['full_walks']}")
    # Bigger SCs hit more; the paper's 128 entries already capture the
    # bulk of the benefit on a 2 MB-granularity-friendly footprint.
    assert sweep[16]["sc_hit_rate"] <= sweep[128]["sc_hit_rate"] + 0.01
    assert sweep[128]["sc_hit_rate"] > 0.85
    assert sweep[1024]["sc_hit_rate"] - sweep[128]["sc_hit_rate"] < 0.10


def measure_serial_vs_parallel():
    """Section IV-C: serial+SC (paper's pick) vs. parallel-with-LLC."""
    results = {}
    for label, kwargs in (
        ("serial+SC", dict(parallel_delayed=False, use_segment_cache=True)),
        ("parallel+SC", dict(parallel_delayed=True, use_segment_cache=True)),
        ("serial,noSC", dict(parallel_delayed=False,
                             use_segment_cache=False)),
        ("parallel,noSC", dict(parallel_delayed=True,
                               use_segment_cache=False)),
    ):
        system = SystemConfig()
        kernel = Kernel(system)
        workload = lay_out("gups", kernel)
        mmu = HybridMmu(kernel, system, delayed="segments", **kwargs)
        result = Simulator(mmu).run(workload, accesses=12_000, warmup=8_000,
                                    reset_stats_after_warmup=True)
        wasted = mmu.hybrid_stats["wasted_parallel_translations"]
        results[label] = {"ipc": result.ipc, "wasted_translations": wasted}
    return results


@pytest.mark.benchmark(group="ablations")
def test_serial_vs_parallel_delayed_ablation(benchmark, report):
    rows = run_once(benchmark, measure_serial_vs_parallel)
    emit(report, "\nAblation 4 — serial vs. parallel delayed translation "
                 "(GUPS)")
    for label, row in rows.items():
        emit(report, f"  {label:<14} ipc={row['ipc']:.4f} "
                     f"wasted translations={row['wasted_translations']}")
    # Parallel hides latency: at least as fast as serial for the same SC
    # setting...
    assert rows["parallel+SC"]["ipc"] >= rows["serial+SC"]["ipc"] - 1e-6
    assert rows["parallel,noSC"]["ipc"] >= rows["serial,noSC"]["ipc"] - 1e-6
    # ...but wastes speculative translations on LLC hits (the energy cost
    # that made the paper choose serial + segment cache).
    assert rows["parallel+SC"]["wasted_translations"] > 0
    assert rows["serial+SC"]["wasted_translations"] == 0
    # The SC recovers most of what parallelism buys: the paper's pick is
    # within a whisker of the expensive option.
    assert rows["serial+SC"]["ipc"] > 0.95 * rows["parallel+SC"]["ipc"]


@pytest.mark.benchmark(group="ablations")
def test_allocation_policy_ablation(benchmark, report):
    policies = run_once(benchmark, measure_allocation_policies)
    emit(report, "\nAblation 3 — eager vs. reservation-based allocation")
    for label, row in policies.items():
        emit(report, f"  {label:<12} segments={row['segments']:<4} "
                     f"usage={100 * row['usage']:5.1f}%")
    eager, reservation = policies["eager"], policies["reservation"]
    # Eager: fewest segments, poor utilization on sparse use.
    assert eager["segments"] <= 2
    assert eager["usage"] < 0.5
    # Reservation: full utilization of what exists, but more segments.
    assert reservation["usage"] > 0.99
    assert reservation["segments"] > eager["segments"]
