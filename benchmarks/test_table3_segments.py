"""Table III — live segments, RMM(32) range-TLB MPKI, memory utilization.

Paper claims (Section IV-B): some applications live happily in a handful
of segments while others — memcached's on-demand growth, tigr,
xalancbmk — need far more than RMM's 32 core-side ranges and thrash
them (considerable segment MPKI); eager allocation leaves 17–75 % of
memory untouched in several applications.
"""

from __future__ import annotations

import pytest

from repro.common.params import SystemConfig
from repro.common.stats import mpki
from repro.osmodel import Kernel
from repro.segtrans import RangeTlb
from repro.sim import lay_out
from repro.workloads import TABLE3_WORKLOADS, spec

from conftest import emit, run_once

ACCESSES = 25_000

#: Workloads the paper calls out as exceeding 32 ranges / thrashing RMM.
MANY_SEGMENT_APPS = ("memcached", "tigr", "xalancbmk")
#: Workloads with few big allocations.
FEW_SEGMENT_APPS = ("gups", "stream", "cactus", "gemsfdtd", "npb_cg")
#: Apps whose eager allocations go substantially unused (paper: 17-75 %
#: of allocated memory untouched in four applications).
UNDERUSED_APPS = ("memcached", "tigr", "xalancbmk", "mcf")


def measure(name: str):
    kernel = Kernel(SystemConfig())
    workload = lay_out(name, kernel)
    range_tlb = RangeTlb(kernel.segment_table, entries=32)
    stacks = {asid: vma for asid, vma in workload.stack_vmas.items()}
    instructions = 0
    for record in workload.trace(ACCESSES):
        instructions += 1 + record.gap
        # Fault pages in (populates the touched-page accounting that the
        # usage column reports).
        kernel.translate(record.asid, record.va)
        # The small demand-paged stack isn't segment-backed in this model
        # (in RMM proper it would be one extra range per process and
        # never miss); route only heap traffic through the range TLB.
        stack = stacks.get(record.asid)
        if stack is not None and stack.contains(record.va):
            continue
        range_tlb.lookup(record.asid, record.va)
    return {
        "segments": workload.live_segments(),
        "rmm_mpki": mpki(range_tlb.miss_count(), instructions),
        # The paper's Usage column is whole-run utilization; a short
        # trace only lower-bounds it.  The generator's reachable span
        # (touch_fraction) is the design value; the measured touches must
        # stay within it.
        "usage": spec(name).touch_fraction,
        "usage_measured": workload.segment_utilization(),
    }


def measure_all():
    return {name: measure(name) for name in TABLE3_WORKLOADS}


@pytest.mark.benchmark(group="table3")
def test_table3_segments(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nTable III — segments in use, RMM(32) MPKI, usage")
    emit(report, f"{'workload':<12}{'segments':>10}{'RMM MPKI':>12}"
                 f"{'usage':>9}{'(traced)':>10}")
    for name, row in rows.items():
        emit(report, f"{name:<12}{row['segments']:>10}{row['rmm_mpki']:>12.2f}"
                     f"{100 * row['usage']:>8.1f}%"
                     f"{100 * row['usage_measured']:>9.1f}%")

    for name in MANY_SEGMENT_APPS:
        assert rows[name]["segments"] > 32, name
        # Thrashing: well above the near-zero MPKI of small apps.
        assert rows[name]["rmm_mpki"] > 1.0, name

    for name in FEW_SEGMENT_APPS:
        assert rows[name]["segments"] <= 32, name
        assert rows[name]["rmm_mpki"] < 1.0, name

    # Utilization: several apps leave 17-75 % untouched; the rest can
    # reach everything.  The traced touches never exceed the reachable
    # span (the generator honours the eager-allocation waste).
    for name in UNDERUSED_APPS:
        assert rows[name]["usage"] < 0.88, name
    for name in ("stream", "gups"):
        assert rows[name]["usage"] > 0.95, name
    for name, row in rows.items():
        assert row["usage_measured"] <= row["usage"] + 0.05, name

    # Segment counts respect the 2048-entry system budget throughout.
    assert all(r["segments"] <= 2048 for r in rows.values())
