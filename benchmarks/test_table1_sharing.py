"""Table I — ratio of r/w shared memory area and accesses to shared regions.

Paper values (Section II-C): postgres shares ~2/3 of its memory but only
~16 % of its accesses touch the shared region; ferret / SpecJBB /
firefox / apache share small amounts; SPEC CPU and the rest of PARSEC
share nothing.
"""

from __future__ import annotations

import pytest

from repro.common.params import SystemConfig
from repro.osmodel import Kernel
from repro.sim import lay_out
from repro.workloads import SYNONYM_WORKLOADS

from conftest import emit, run_once

ACCESSES = 30_000

#: Paper's qualitative expectations: (min_area, max_area, max_access).
PAPER_BANDS = {
    "ferret": (0.005, 0.10, 0.05),
    "postgres": (0.50, 0.80, 0.25),
    "specjbb": (0.001, 0.05, 0.03),
    "firefox": (0.005, 0.10, 0.05),
    "apache": (0.01, 0.12, 0.06),
}


def measure(name: str):
    kernel = Kernel(SystemConfig())
    workload = lay_out(name, kernel)
    area = workload.shared_area_fraction()
    shared_hits = 0
    for record in workload.trace(ACCESSES):
        vma = workload.shared_vmas.get(record.asid)
        if vma is not None and vma.contains(record.va):
            shared_hits += 1
    return area, shared_hits / ACCESSES


def measure_all():
    rows = {}
    for name in SYNONYM_WORKLOADS:
        rows[name] = measure(name)
    # Controls: no sharing at all.
    for name in ("speccpu_private", "canneal"):
        rows[name] = measure(name)
    return rows


@pytest.mark.benchmark(group="table1")
def test_table1_sharing(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nTable I — r/w shared area and shared-access ratios")
    emit(report, f"{'workload':<18}{'shared area':>14}{'shared access':>16}")
    for name, (area, access) in rows.items():
        emit(report, f"{name:<18}{100 * area:>13.2f}%{100 * access:>15.2f}%")

    for name, (lo, hi, max_access) in PAPER_BANDS.items():
        area, access = rows[name]
        assert lo <= area <= hi, f"{name}: shared area {area:.3f} out of band"
        assert access <= max_access, f"{name}: shared access {access:.3f}"
        assert access > 0, f"{name}: expected some shared accesses"

    # postgres: large shared area but modest access fraction (the paper's
    # key observation motivating the filter design).
    pg_area, pg_access = rows["postgres"]
    assert pg_area > 3 * pg_access

    # SPEC CPU and non-ferret PARSEC rows are exactly zero.
    for control in ("speccpu_private", "canneal"):
        area, access = rows[control]
        assert area == 0.0 and access == 0.0
