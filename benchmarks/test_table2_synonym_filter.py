"""Table II — synonym-filter false positives, TLB access & miss reduction.

Paper values (Section III-C, 8 MB shared cache, 64-entry synonym TLB,
1024-entry delayed TLB — same total TLB area as the two-level baseline):

    workload   false-positive   TLB-access    total-TLB-miss
                    rate         reduction      reduction
    ferret        <0.5 %          99.1 %          20.4 %
    postgres      <0.5 %          83.7 %          -6.1 %
    SpecJBB       <0.5 %          99.9 %          42.6 %
    firefox       <0.5 %          99.4 %          63.2 %
    apache        <0.5 %          99.5 %          69.7 %
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.params import SystemConfig
from repro.core import ConventionalMmu, HybridMmu
from repro.osmodel import Kernel
from repro.sim import Simulator, lay_out
from repro.workloads import SYNONYM_WORKLOADS

from conftest import emit, run_once

ACCESSES = 40_000
WARMUP = 80_000


def config_for(name: str):
    """8 MB shared LLC (the paper's Section III-C setup) and a delayed
    TLB sized for equal overall TLB area with the per-core two-level
    baseline ("the same overall TLB area as the conventional system")."""
    from repro.workloads import spec
    cores = spec(name).sharing.processes if spec(name).sharing else 1
    config = dataclasses.replace(SystemConfig().with_llc_size(8 * 1024 * 1024),
                                 cores=cores)
    entries = 1024 * (1 << (cores - 1).bit_length())
    return config.with_delayed_tlb_entries(entries)


def measure(name: str):
    config = config_for(name)

    kernel = Kernel(config)
    workload = lay_out(name, kernel)
    hybrid = HybridMmu(kernel, config, delayed="tlb")
    Simulator(hybrid).run(workload, accesses=ACCESSES, warmup=WARMUP,
                          reset_stats_after_warmup=True)

    kernel_b = Kernel(config)
    workload_b = lay_out(name, kernel_b)
    baseline = ConventionalMmu(kernel_b, config)
    Simulator(baseline).run(workload_b, accesses=ACCESSES, warmup=WARMUP,
                            reset_stats_after_warmup=True)

    baseline_misses = sum(
        baseline.tlbs[c].stats["misses"] for c in range(config.cores))
    hybrid_misses = hybrid.total_tlb_misses()
    miss_reduction = (1.0 - hybrid_misses / baseline_misses
                      if baseline_misses else 0.0)
    return {
        "fp_rate": hybrid.false_positive_rate(),
        "access_reduction": hybrid.tlb_access_reduction(),
        "miss_reduction": miss_reduction,
    }


def measure_all():
    return {name: measure(name) for name in SYNONYM_WORKLOADS}


@pytest.mark.benchmark(group="table2")
def test_table2_synonym_filter(benchmark, report):
    rows = run_once(benchmark, measure_all)

    emit(report, "\nTable II — synonym filter effectiveness "
                 "(paper: fp<0.5%; access reduction 83.7-99.9%)")
    emit(report, f"{'workload':<12}{'false-pos':>12}{'acc. red.':>12}"
                 f"{'miss red.':>12}")
    for name, row in rows.items():
        emit(report, f"{name:<12}{100 * row['fp_rate']:>11.3f}%"
                     f"{100 * row['access_reduction']:>11.1f}%"
                     f"{100 * row['miss_reduction']:>11.1f}%")

    for name, row in rows.items():
        # The filter guarantee: false positives well under the paper's 0.5 %.
        assert row["fp_rate"] < 0.005, name

    # Access-reduction shape: postgres is the outlier (~84 %), the other
    # four bypass essentially everything (>97 %).
    assert 0.75 < rows["postgres"]["access_reduction"] < 0.90
    for name in ("ferret", "specjbb", "firefox", "apache"):
        assert rows[name]["access_reduction"] > 0.97, name

    # Miss-reduction shape: clearly positive for the low-sharing
    # workloads (the LLC absorbs translation requests; paper: +20-70 %),
    # *negative* for postgres, whose hot shared pages fit the baseline's
    # 1088-entry reach but thrash the 64-entry synonym TLB (paper: -6 %).
    for name in ("specjbb", "firefox", "apache", "ferret"):
        assert rows[name]["miss_reduction"] > 0.15, name
    assert rows["postgres"]["miss_reduction"] < 0.0
    assert (rows["postgres"]["miss_reduction"]
            == min(r["miss_reduction"] for r in rows.values()))
